#include "fault/secded.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(Secded, CleanRoundTrip) {
  Xoshiro256 rng{1};
  for (int t = 0; t < 200; ++t) {
    const u64 data = rng.next();
    const u8 check = secded_encode(data);
    const SecdedDecode d = secded_decode(data, check);
    EXPECT_EQ(d.status, SecdedStatus::kClean);
    EXPECT_EQ(d.data, data);
  }
}

TEST(Secded, EverySingleDataBitFlipCorrected) {
  Xoshiro256 rng{2};
  const u64 data = rng.next();
  const u8 check = secded_encode(data);
  for (usize bit = 0; bit < 64; ++bit) {
    const SecdedDecode d = secded_decode(data ^ (u64{1} << bit), check);
    EXPECT_EQ(d.status, SecdedStatus::kCorrected) << "bit " << bit;
    EXPECT_EQ(d.data, data) << "bit " << bit;
  }
}

TEST(Secded, EverySingleCheckBitFlipCorrected) {
  Xoshiro256 rng{3};
  const u64 data = rng.next();
  const u8 check = secded_encode(data);
  for (usize bit = 0; bit < 8; ++bit) {
    const SecdedDecode d =
        secded_decode(data, static_cast<u8>(check ^ (1u << bit)));
    EXPECT_EQ(d.status, SecdedStatus::kCorrected) << "check bit " << bit;
    EXPECT_EQ(d.data, data) << "check bit " << bit;
  }
}

TEST(Secded, DoubleFlipsDetectedNotMiscorrected) {
  Xoshiro256 rng{4};
  const u64 data = rng.next();
  const u8 check = secded_encode(data);
  // data+data, data+check and check+check double flips all land in the
  // uncorrectable verdict (extended-Hamming SECDED guarantee).
  for (int t = 0; t < 100; ++t) {
    const usize a = static_cast<usize>(rng.next_below(64));
    usize b = static_cast<usize>(rng.next_below(64));
    if (a == b) b = (b + 1) % 64;
    const u64 corrupted = data ^ (u64{1} << a) ^ (u64{1} << b);
    EXPECT_EQ(secded_decode(corrupted, check).status,
              SecdedStatus::kUncorrectable)
        << a << "," << b;
  }
  for (usize a = 0; a < 64; ++a) {
    const SecdedDecode d = secded_decode(data ^ (u64{1} << a),
                                         static_cast<u8>(check ^ 1u));
    EXPECT_EQ(d.status, SecdedStatus::kUncorrectable) << a;
  }
  EXPECT_EQ(secded_decode(data, static_cast<u8>(check ^ 0b101u)).status,
            SecdedStatus::kUncorrectable);
}

TEST(Secded, CheckBitsPerChunk) {
  EXPECT_EQ(secded_check_bits(0), 0u);
  EXPECT_EQ(secded_check_bits(1), 8u);
  EXPECT_EQ(secded_check_bits(64), 8u);
  EXPECT_EQ(secded_check_bits(65), 16u);
  EXPECT_EQ(secded_check_bits(130), 24u);
}

BitBuf random_payload(usize bits, Xoshiro256& rng) {
  BitBuf buf{bits};
  for (usize i = 0; i < bits; ++i) buf.set_bit(i, rng.next_bool(0.5));
  return buf;
}

TEST(Secded, ProtectUnprotectRoundTrip) {
  Xoshiro256 rng{5};
  for (const usize bits : {usize{1}, usize{20}, usize{64}, usize{100},
                           usize{128}, usize{139}}) {
    const BitBuf payload = random_payload(bits, rng);
    const BitBuf stored = secded_protect(payload);
    ASSERT_EQ(stored.size(), bits + secded_check_bits(bits));
    const SecdedMetaDecode d = secded_unprotect(stored, bits);
    EXPECT_EQ(d.corrected, 0u);
    EXPECT_EQ(d.uncorrectable, 0u);
    ASSERT_EQ(d.payload.size(), bits);
    for (usize i = 0; i < bits; ++i) {
      EXPECT_EQ(d.payload.bit(i), payload.bit(i)) << i;
    }
  }
}

TEST(Secded, ProtectedRegionCorrectsAnySinglePerChunkFlip) {
  Xoshiro256 rng{6};
  const usize bits = 100;  // two chunks, second partial
  const BitBuf payload = random_payload(bits, rng);
  const BitBuf stored = secded_protect(payload);
  for (usize flip = 0; flip < stored.size(); ++flip) {
    BitBuf corrupted = stored;
    corrupted.set_bit(flip, !corrupted.bit(flip));
    const SecdedMetaDecode d = secded_unprotect(corrupted, bits);
    EXPECT_EQ(d.corrected, 1u) << "flip " << flip;
    EXPECT_EQ(d.uncorrectable, 0u) << "flip " << flip;
    for (usize i = 0; i < bits; ++i) {
      ASSERT_EQ(d.payload.bit(i), payload.bit(i))
          << "flip " << flip << " payload bit " << i;
    }
  }
}

TEST(Secded, ProtectedRegionFlagsDoubleFlips) {
  Xoshiro256 rng{7};
  const usize bits = 64;
  const BitBuf payload = random_payload(bits, rng);
  BitBuf corrupted = secded_protect(payload);
  corrupted.set_bit(3, !corrupted.bit(3));
  corrupted.set_bit(40, !corrupted.bit(40));
  const SecdedMetaDecode d = secded_unprotect(corrupted, bits);
  EXPECT_EQ(d.corrected, 0u);
  EXPECT_EQ(d.uncorrectable, 1u);
}

TEST(Secded, UnprotectValidatesWidth) {
  const BitBuf stored{70};  // not 64 + 8
  EXPECT_THROW((void)secded_unprotect(stored, 64), std::invalid_argument);
}

}  // namespace
}  // namespace nvmenc
