#include "common/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace nvmenc {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h{8};
  h.add(0);
  h.add(0);
  h.add(8);
  h.add(3, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(8), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.4);
}

TEST(Histogram, OverflowBucket) {
  Histogram h{4};
  h.add(100);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, Mean) {
  Histogram h{8};
  h.add(2, 3);
  h.add(6, 1);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 6.0) / 4.0);
}

TEST(Histogram, MeanOfEmptyIsZero) {
  Histogram h{8};
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, OutOfRangeCountThrows) {
  Histogram h{4};
  EXPECT_THROW((void)h.count(5), std::invalid_argument);
}

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsEmptyAndNonPositive) {
  EXPECT_THROW((void)geomean({}), std::invalid_argument);
  EXPECT_THROW((void)geomean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)geomean({-1.0}), std::invalid_argument);
}

TEST(Mean, KnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

}  // namespace
}  // namespace nvmenc
