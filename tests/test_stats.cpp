#include "common/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace nvmenc {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h{8};
  h.add(0);
  h.add(0);
  h.add(8);
  h.add(3, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(8), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.4);
}

TEST(Histogram, OverflowBucket) {
  Histogram h{4};
  h.add(100);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, Mean) {
  Histogram h{8};
  h.add(2, 3);
  h.add(6, 1);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 6.0) / 4.0);
}

TEST(Histogram, MeanOfEmptyIsZero) {
  Histogram h{8};
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, OutOfRangeCountThrows) {
  Histogram h{4};
  EXPECT_THROW((void)h.count(5), std::invalid_argument);
}

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsEmptyAndNonPositive) {
  EXPECT_THROW((void)geomean({}), std::invalid_argument);
  EXPECT_THROW((void)geomean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)geomean({-1.0}), std::invalid_argument);
}

TEST(Mean, KnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

TEST(LatencyHistogram, Empty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (double v = 1.0; v <= 10.0; v += 1.0) h.add(v);
  // Values below 16 land in unit-wide buckets: nearest-rank percentiles
  // are exact.
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(LatencyHistogram, ConstantStreamReportsExactlyAtAllPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i) h.add(777.0);
  // Bucket midpoints are clamped into [min, max], so a constant stream
  // reports its value exactly everywhere.
  EXPECT_DOUBLE_EQ(h.p50(), 777.0);
  EXPECT_DOUBLE_EQ(h.p99(), 777.0);
  EXPECT_DOUBLE_EQ(h.p999(), 777.0);
}

TEST(LatencyHistogram, LogBucketRelativeErrorIsBounded) {
  LatencyHistogram h;
  const double value = 1.0e6;
  for (int i = 0; i < 100; ++i) h.add(value);
  h.add(2.0e6);  // keep max above the bucket so the clamp can't hide error
  // 16 sub-buckets per power of two: <= 1/16 relative error.
  EXPECT_NEAR(h.p50(), value, value / 16.0);
}

TEST(LatencyHistogram, TailPercentilesSeparate) {
  LatencyHistogram h;
  for (int i = 0; i < 990; ++i) h.add(100.0);
  for (int i = 0; i < 10; ++i) h.add(100'000.0);
  EXPECT_NEAR(h.p50(), 100.0, 100.0 / 16.0);
  EXPECT_NEAR(h.p999(), 100'000.0, 100'000.0 / 16.0);
  EXPECT_LT(h.p50() * 100, h.p999());
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (double v = 1.0; v <= 5.0; v += 1.0) a.add(v);
  for (double v = 6.0; v <= 10.0; v += 1.0) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.p50(), 5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.5);
  // Merging an empty histogram changes nothing.
  a.merge(LatencyHistogram{});
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(LatencyHistogram, NegativeInputsClampToZero) {
  LatencyHistogram h;
  h.add(-5.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

}  // namespace
}  // namespace nvmenc
