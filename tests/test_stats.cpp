#include "common/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h{8};
  h.add(0);
  h.add(0);
  h.add(8);
  h.add(3, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(8), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.4);
}

TEST(Histogram, OverflowBucket) {
  Histogram h{4};
  h.add(100);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, Mean) {
  Histogram h{8};
  h.add(2, 3);
  h.add(6, 1);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 6.0) / 4.0);
}

TEST(Histogram, MeanOfEmptyIsZero) {
  Histogram h{8};
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, OutOfRangeCountThrows) {
  Histogram h{4};
  EXPECT_THROW((void)h.count(5), std::invalid_argument);
}

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsEmptyAndNonPositive) {
  EXPECT_THROW((void)geomean({}), std::invalid_argument);
  EXPECT_THROW((void)geomean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)geomean({-1.0}), std::invalid_argument);
}

TEST(Mean, KnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

TEST(LatencyHistogram, Empty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (double v = 1.0; v <= 10.0; v += 1.0) h.add(v);
  // Values below 16 land in unit-wide buckets: nearest-rank percentiles
  // are exact.
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(LatencyHistogram, ConstantStreamReportsExactlyAtAllPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i) h.add(777.0);
  // Bucket midpoints are clamped into [min, max], so a constant stream
  // reports its value exactly everywhere.
  EXPECT_DOUBLE_EQ(h.p50(), 777.0);
  EXPECT_DOUBLE_EQ(h.p99(), 777.0);
  EXPECT_DOUBLE_EQ(h.p999(), 777.0);
}

TEST(LatencyHistogram, LogBucketRelativeErrorIsBounded) {
  LatencyHistogram h;
  const double value = 1.0e6;
  for (int i = 0; i < 100; ++i) h.add(value);
  h.add(2.0e6);  // keep max above the bucket so the clamp can't hide error
  // 16 sub-buckets per power of two: <= 1/16 relative error.
  EXPECT_NEAR(h.p50(), value, value / 16.0);
}

TEST(LatencyHistogram, TailPercentilesSeparate) {
  LatencyHistogram h;
  for (int i = 0; i < 990; ++i) h.add(100.0);
  for (int i = 0; i < 10; ++i) h.add(100'000.0);
  EXPECT_NEAR(h.p50(), 100.0, 100.0 / 16.0);
  EXPECT_NEAR(h.p999(), 100'000.0, 100'000.0 / 16.0);
  EXPECT_LT(h.p50() * 100, h.p999());
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (double v = 1.0; v <= 5.0; v += 1.0) a.add(v);
  for (double v = 6.0; v <= 10.0; v += 1.0) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.p50(), 5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.5);
  // Merging an empty histogram changes nothing.
  a.merge(LatencyHistogram{});
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(LatencyHistogram, NegativeInputsClampToZero) {
  LatencyHistogram h;
  h.add(-5.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

// --- merge properties backing the sharded engines (DESIGN.md §10) ---
//
// The samples below are integer-valued on purpose: bucket counts merge
// exactly for any values, but the running sum is a double, and float
// addition is only associative when every partial sum is exactly
// representable. Integer latencies (ns) well under 2^53 are, so these
// properties hold bit for bit — which is also why shard merges happen in
// fixed channel-id order rather than relying on associativity.

/// Latency samples shaped like a service-time distribution: a body around
/// 100 ns and a heavy write-drain tail.
std::vector<double> latency_samples(u64 seed, usize n) {
  Xoshiro256 rng{seed};
  std::vector<double> out;
  out.reserve(n);
  for (usize i = 0; i < n; ++i) {
    const u64 tail = rng.next_below(100);
    const u64 v = tail < 97 ? 80 + rng.next_below(64)
                            : 2000 + rng.next_below(8192);
    out.push_back(static_cast<double>(v));
  }
  return out;
}

TEST(LatencyHistogram, MergeOfShardsEqualsSingleRecorder) {
  // Record one stream whole, and round-robin split across K shard
  // histograms merged back in shard order: identical for every K.
  const std::vector<double> samples = latency_samples(42, 5000);
  LatencyHistogram whole;
  for (double v : samples) whole.add(v);
  for (usize shards : {usize{1}, usize{2}, usize{3}, usize{8}}) {
    std::vector<LatencyHistogram> parts(shards);
    for (usize i = 0; i < samples.size(); ++i) {
      parts[i % shards].add(samples[i]);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram& part : parts) merged.merge(part);
    EXPECT_EQ(merged, whole) << "shards=" << shards;
  }
}

TEST(LatencyHistogram, MergeIsCommutative) {
  const std::vector<double> xs = latency_samples(1, 2000);
  const std::vector<double> ys = latency_samples(2, 3000);
  LatencyHistogram a;
  LatencyHistogram b;
  for (double v : xs) a.add(v);
  for (double v : ys) b.add(v);
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(LatencyHistogram, MergeIsAssociative) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  for (double v : latency_samples(3, 1000)) a.add(v);
  for (double v : latency_samples(4, 1500)) b.add(v);
  for (double v : latency_samples(5, 500)) c.add(v);
  LatencyHistogram left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  LatencyHistogram right = b;  // a + (b + c)
  right.merge(c);
  LatencyHistogram a_first = a;
  a_first.merge(right);
  EXPECT_EQ(left, a_first);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentityBothWays) {
  LatencyHistogram h;
  for (double v : latency_samples(6, 800)) h.add(v);
  LatencyHistogram into = h;
  into.merge(LatencyHistogram{});
  EXPECT_EQ(into, h);
  LatencyHistogram from;
  from.merge(h);
  EXPECT_EQ(from, h);
}

TEST(RunningStat, MergeMatchesSingleAccumulatorOnIntegers) {
  // Chan et al. parallel combine: on integer-valued samples the mean and
  // count match a single accumulator exactly; variance to float tolerance.
  const std::vector<double> samples = latency_samples(7, 4000);
  RunningStat whole;
  for (double v : samples) whole.add(v);
  for (usize shards : {usize{2}, usize{4}}) {
    std::vector<RunningStat> parts(shards);
    for (usize i = 0; i < samples.size(); ++i) {
      parts[i % shards].add(samples[i]);
    }
    RunningStat merged;
    for (const RunningStat& part : parts) merged.merge(part);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * whole.mean());
    EXPECT_NEAR(merged.variance(), whole.variance(),
                1e-6 * whole.variance());
  }
}

TEST(RunningStat, MergeWithEmptyIsIdentityBothWays) {
  RunningStat s;
  s.add(10.0);
  s.add(20.0);
  RunningStat into = s;
  into.merge(RunningStat{});
  EXPECT_EQ(into.count(), 2u);
  EXPECT_DOUBLE_EQ(into.mean(), 15.0);
  RunningStat from;
  from.merge(s);
  EXPECT_EQ(from.count(), 2u);
  EXPECT_DOUBLE_EQ(from.mean(), 15.0);
  EXPECT_DOUBLE_EQ(from.min(), 10.0);
  EXPECT_DOUBLE_EQ(from.max(), 20.0);
}

}  // namespace
}  // namespace nvmenc
