// MaskCosetEncoder tests: Flip-N-Write and FlipMin behaviour, the
// theoretical bounds the paper's Figure 3 rests on.
#include "encoding/mask_coset.hpp"

#include <gtest/gtest.h>

#include "encoder_test_util.hpp"
#include "encoding/dcw.hpp"

namespace nvmenc {
namespace {

TEST(MaskCoset, CtorValidation) {
  using V = std::vector<u64>;
  // Block must divide 512 and fit in 64.
  EXPECT_THROW(MaskCosetEncoder("x", 0, V{0, 1}), std::invalid_argument);
  EXPECT_THROW(MaskCosetEncoder("x", 65, V{0, 1}), std::invalid_argument);
  EXPECT_THROW(MaskCosetEncoder("x", 24, V{0, 1}), std::invalid_argument);
  // Mask set: power-of-two size, identity first, distinct, within block.
  EXPECT_THROW(MaskCosetEncoder("x", 8, V{0}), std::invalid_argument);
  EXPECT_THROW(MaskCosetEncoder("x", 8, V{0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(MaskCosetEncoder("x", 8, V{1, 0}), std::invalid_argument);
  EXPECT_THROW(MaskCosetEncoder("x", 8, V{0, 0}), std::invalid_argument);
  EXPECT_THROW(MaskCosetEncoder("x", 8, V{0, 0x100}), std::invalid_argument);
  EXPECT_NO_THROW(MaskCosetEncoder("x", 8, V{0, 0xFF}));
}

TEST(Fnw, MetaBitsMatchGranularity) {
  EXPECT_EQ(make_fnw(8)->meta_bits(), 64u);   // paper config: 12.5% overhead
  EXPECT_EQ(make_fnw(16)->meta_bits(), 32u);
  EXPECT_DOUBLE_EQ(make_fnw(8)->capacity_overhead(), 0.125);
}

class FnwGranularity : public ::testing::TestWithParam<usize> {};

TEST_P(FnwGranularity, RoundTripsAllWriteClasses) {
  const EncoderPtr enc = make_fnw(GetParam());
  testutil::exercise_encoder(*enc, 42 + GetParam());
}

TEST_P(FnwGranularity, NeverWorseThanDcwPlusTags) {
  const usize g = GetParam();
  const EncoderPtr enc = make_fnw(g);
  DcwEncoder dcw;
  Xoshiro256 rng{77};
  CacheLine logical = testutil::random_line(rng);
  StoredLine fnw_stored = enc->make_stored(logical);
  StoredLine dcw_stored = dcw.make_stored(logical);
  for (int i = 0; i < 200; ++i) {
    logical = testutil::next_line(
        rng, logical,
        testutil::kAllWriteClasses[rng.next_below(6)]);
    const usize fnw_flips = enc->encode(fnw_stored, logical).total();
    const usize dcw_flips = dcw.encode(dcw_stored, logical).total();
    // Per block, FNW picks min(keep, flip) <= keep = DCW cost + <=1 tag.
    EXPECT_LE(fnw_flips, dcw_flips + kLineBits / g);
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, FnwGranularity,
                         ::testing::Values<usize>(2, 4, 8, 16, 32, 64));

TEST(Fnw, FlipsBlockWhenBeneficial) {
  // Old stored all-zeros; write all-ones: flipping stores zeros again, one
  // tag flip per block instead of g data flips.
  const EncoderPtr enc = make_fnw(8);
  StoredLine stored = enc->make_stored(CacheLine{});
  const CacheLine ones = CacheLine::filled(~u64{0});
  const FlipBreakdown fb = enc->encode(stored, ones);
  EXPECT_EQ(fb.data, 0u);
  EXPECT_EQ(fb.tag, 64u);  // every tag set
  EXPECT_EQ(enc->decode(stored), ones);
}

TEST(Fnw, KeepsBlockWhenCheaper) {
  const EncoderPtr enc = make_fnw(8);
  StoredLine stored = enc->make_stored(CacheLine{});
  CacheLine sparse;
  sparse.set_word(0, 0x1);  // a single bit set: cheaper unflipped
  const FlipBreakdown fb = enc->encode(stored, sparse);
  EXPECT_EQ(fb.total(), 1u);
  EXPECT_EQ(fb.tag, 0u);
}

TEST(Fnw, SilentWriteIsFree) {
  const EncoderPtr enc = make_fnw(8);
  Xoshiro256 rng{3};
  const CacheLine line = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(line);
  EXPECT_EQ(enc->encode(stored, line).total(), 0u);
  // Also free after the stored image accumulated flip state.
  const CacheLine inverse = ~line;
  (void)enc->encode(stored, inverse);
  EXPECT_EQ(enc->encode(stored, inverse).total(), 0u);
}

TEST(Fnw, WorstCasePerBlockIsHalf) {
  // FNW guarantee: a block never costs more than (g+1)/2 flips.
  const usize g = 8;
  const EncoderPtr enc = make_fnw(g);
  Xoshiro256 rng{55};
  CacheLine logical = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(logical);
  for (int i = 0; i < 300; ++i) {
    logical = testutil::random_line(rng);
    const usize flips = enc->encode(stored, logical).total();
    EXPECT_LE(flips, (kLineBits / g) * ((g + 1) / 2 + 1));
  }
}

TEST(Fnw, FinerGranularityReducesRandomDataFlips) {
  // The Figure 3 trend: smaller g -> fewer flips on random data.
  Xoshiro256 rng{88};
  std::vector<CacheLine> lines;
  for (int i = 0; i < 400; ++i) lines.push_back(testutil::random_line(rng));

  auto total_flips = [&](usize g) {
    const EncoderPtr enc = make_fnw(g);
    StoredLine stored = enc->make_stored(lines[0]);
    usize flips = 0;
    for (usize i = 1; i < lines.size(); ++i) {
      flips += enc->encode(stored, lines[i]).total();
    }
    return flips;
  };

  const usize f4 = total_flips(4);
  const usize f16 = total_flips(16);
  const usize f64 = total_flips(64);
  EXPECT_LT(f4, f16);
  EXPECT_LT(f16, f64);
}

TEST(FlipMin, RoundTripsAllWriteClasses) {
  const EncoderPtr enc = make_flipmin();
  testutil::exercise_encoder(*enc, 4242);
}

TEST(FlipMin, BeatsFnwAtSameBlockSizeOnRandomData) {
  // 16 masks over 16-bit blocks vs 2 masks: strictly more choice can only
  // help the data flips; with tag cost it should still win on random data.
  Xoshiro256 rng{91};
  std::vector<CacheLine> lines;
  for (int i = 0; i < 400; ++i) lines.push_back(testutil::random_line(rng));
  const EncoderPtr flipmin = make_flipmin();
  const EncoderPtr fnw16 = make_fnw(16);
  StoredLine s1 = flipmin->make_stored(lines[0]);
  StoredLine s2 = fnw16->make_stored(lines[0]);
  usize f1 = 0;
  usize f2 = 0;
  for (usize i = 1; i < lines.size(); ++i) {
    f1 += flipmin->encode(s1, lines[i]).total();
    f2 += fnw16->encode(s2, lines[i]).total();
  }
  EXPECT_LT(f1, f2);
}

TEST(FlipMin, NameAndOverhead) {
  const EncoderPtr enc = make_flipmin();
  EXPECT_EQ(enc->name(), "FlipMin");
  EXPECT_EQ(enc->meta_bits(), 32u * 4);  // 32 blocks x 4 index bits
}

TEST(Pres, RoundTripsAllWriteClasses) {
  const EncoderPtr enc = make_pres();
  EXPECT_EQ(enc->name(), "PRES");
  testutil::exercise_encoder(*enc, 5150);
}

TEST(Pres, SeedChangesMaskSetButNotCorrectness) {
  const EncoderPtr a = make_pres(1);
  const EncoderPtr b = make_pres(2);
  Xoshiro256 rng{33};
  const CacheLine old_line = testutil::random_line(rng);
  const CacheLine new_line = testutil::random_line(rng);
  StoredLine sa = a->make_stored(old_line);
  StoredLine sb = b->make_stored(old_line);
  (void)a->encode(sa, new_line);
  (void)b->encode(sb, new_line);
  EXPECT_EQ(a->decode(sa), new_line);
  EXPECT_EQ(b->decode(sb), new_line);
  // Different mask sets almost surely store different images.
  EXPECT_NE(sa.data, sb.data);
}

TEST(Pres, BeatsFnwAtSameBlockSizeOnRandomData) {
  Xoshiro256 rng{35};
  std::vector<CacheLine> lines;
  for (int i = 0; i < 400; ++i) lines.push_back(testutil::random_line(rng));
  const EncoderPtr pres = make_pres();
  const EncoderPtr fnw16 = make_fnw(16);
  StoredLine s1 = pres->make_stored(lines[0]);
  StoredLine s2 = fnw16->make_stored(lines[0]);
  usize f1 = 0;
  usize f2 = 0;
  for (usize i = 1; i < lines.size(); ++i) {
    f1 += pres->encode(s1, lines[i]).total();
    f2 += fnw16->encode(s2, lines[i]).total();
  }
  EXPECT_LT(f1, f2);
}

}  // namespace
}  // namespace nvmenc
