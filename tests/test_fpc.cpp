#include "compress/fpc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(FpcWord, PatternClassification) {
  EXPECT_EQ(fpc_compress_word(0).pattern, 0);
  EXPECT_EQ(fpc_compress_word(5).pattern, 1);              // 4-bit
  EXPECT_EQ(fpc_compress_word(~u64{0}).pattern, 1);        // -1
  EXPECT_EQ(fpc_compress_word(100).pattern, 2);            // 8-bit
  EXPECT_EQ(fpc_compress_word(u64(-100)).pattern, 2);
  EXPECT_EQ(fpc_compress_word(30000).pattern, 3);          // 16-bit
  EXPECT_EQ(fpc_compress_word(2'000'000'000).pattern, 4);  // 32-bit
  EXPECT_EQ(fpc_compress_word(0xABABABABABABABABull).pattern, 5);
  // Two sign-extended 16-bit halves.
  EXPECT_EQ(fpc_compress_word(0x00001234FFFF8000ull).pattern, 6);
  EXPECT_EQ(fpc_compress_word(0x123456789ABCDEF0ull).pattern, 7);
}

TEST(FpcWord, PayloadBitsTable) {
  EXPECT_EQ(fpc_payload_bits(0), 0u);
  EXPECT_EQ(fpc_payload_bits(1), 4u);
  EXPECT_EQ(fpc_payload_bits(2), 8u);
  EXPECT_EQ(fpc_payload_bits(3), 16u);
  EXPECT_EQ(fpc_payload_bits(4), 32u);
  EXPECT_EQ(fpc_payload_bits(5), 8u);
  EXPECT_EQ(fpc_payload_bits(6), 32u);
  EXPECT_EQ(fpc_payload_bits(7), 64u);
  EXPECT_THROW((void)fpc_payload_bits(8), std::invalid_argument);
}

TEST(FpcWord, TotalBitsIncludesPrefix) {
  EXPECT_EQ(fpc_compress_word(0).total_bits(), 3u);
  EXPECT_EQ(fpc_compress_word(7).total_bits(), 7u);
}

// Round-trip sweep over value classes.
class FpcRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(FpcRoundTrip, WordRoundTrips) {
  const u64 value = GetParam();
  const FpcWord cw = fpc_compress_word(value);
  EXPECT_EQ(fpc_decompress_word(cw.pattern, cw.payload), value);
  EXPECT_EQ(cw.payload_bits, fpc_payload_bits(cw.pattern));
}

INSTANTIATE_TEST_SUITE_P(
    ValueClasses, FpcRoundTrip,
    ::testing::Values(u64{0}, u64{1}, u64{7}, ~u64{0}, u64{255}, u64(-128),
                      u64{65535}, u64(-30000), u64{0x7FFFFFFF},
                      u64(-2'000'000'000), 0x4242424242424242ull,
                      0x0000123400005678ull, 0xFFFF8000FFFF8000ull,
                      0xDEADBEEFCAFEF00Dull, u64{1} << 63));

TEST(Fpc, RandomWordsRoundTrip) {
  Xoshiro256 rng{31};
  for (int i = 0; i < 5000; ++i) {
    const u64 v = rng.next();
    const FpcWord cw = fpc_compress_word(v);
    EXPECT_EQ(fpc_decompress_word(cw.pattern, cw.payload), v);
  }
}

TEST(Fpc, DecompressRejectsBadPattern) {
  EXPECT_THROW((void)fpc_decompress_word(9, 0), std::invalid_argument);
}

TEST(Fpc, LineRoundTripsMixedContent) {
  CacheLine line;
  line.set_word(0, 0);
  line.set_word(1, 42);
  line.set_word(2, ~u64{0});
  line.set_word(3, 0x1111111111111111ull);
  line.set_word(4, 0xDEADBEEF12345678ull);
  line.set_word(5, u64(-5));
  line.set_word(6, 1u << 20);
  line.set_word(7, 0xFFFFFFFF00000001ull);
  const BitBuf stream = fpc_compress_line(line);
  EXPECT_EQ(fpc_decompress_line(stream), line);
}

TEST(Fpc, ZeroLineCompressesToPrefixOnly) {
  const BitBuf stream = fpc_compress_line(CacheLine{});
  EXPECT_EQ(stream.size(), 8u * 3);
}

TEST(Fpc, IncompressibleLineExpandsByPrefixes) {
  Xoshiro256 rng{37};
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    line.set_word(w, rng.next() | (u64{1} << 62));  // defeat sign-extension
  }
  const BitBuf stream = fpc_compress_line(line);
  EXPECT_GE(stream.size(), kLineBits);
  EXPECT_LE(stream.size(), kLineBits + 8 * 3);
  EXPECT_EQ(fpc_decompress_line(stream), line);
}

TEST(Fpc, RandomLinesRoundTrip) {
  Xoshiro256 rng{41};
  for (int i = 0; i < 500; ++i) {
    CacheLine line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      // Mix compressible and incompressible words.
      switch (rng.next_below(4)) {
        case 0: line.set_word(w, 0); break;
        case 1: line.set_word(w, rng.next() & 0xFFFF); break;
        case 2: line.set_word(w, rng.next()); break;
        default: line.set_word(w, ~u64{0}); break;
      }
    }
    EXPECT_EQ(fpc_decompress_line(fpc_compress_line(line)), line);
  }
}

TEST(Fpc, TruncatedStreamThrows) {
  const BitBuf stream =
      fpc_compress_line(CacheLine::filled(0xDEADBEEFCAFEF00Dull));
  BitBuf cut;
  const usize keep = stream.size() / 2;
  for (usize i = 0; i < keep; ++i) cut.push_bit(stream.bit(i));
  EXPECT_THROW((void)fpc_decompress_line(cut), std::invalid_argument);
}

}  // namespace
}  // namespace nvmenc
