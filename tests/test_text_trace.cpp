#include "trace/text_trace.hpp"

#include <gtest/gtest.h>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(TextTrace, RoundTrips) {
  std::vector<MemAccess> trace;
  Xoshiro256 rng{3};
  for (int i = 0; i < 500; ++i) {
    trace.push_back({rng.next() & ~u64{7},
                     rng.next_bool(0.5) ? Op::kWrite : Op::kRead,
                     rng.next()});
  }
  // Reads carry no value in the format.
  for (MemAccess& a : trace) {
    if (a.op == Op::kRead) a.value = 0;
  }
  std::stringstream ss;
  write_text_trace(ss, trace);
  EXPECT_EQ(read_text_trace(ss), trace);
}

TEST(TextTrace, ParsesHandWrittenInput) {
  std::stringstream ss{
      "# a comment\n"
      "\n"
      "R 1000\n"
      "W 1008 deadbeef   # trailing comment\n"
      "r 20\n"
      "w 28 0\n"};
  const std::vector<MemAccess> trace = read_text_trace(ss);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], (MemAccess{0x1000, Op::kRead, 0}));
  EXPECT_EQ(trace[1], (MemAccess{0x1008, Op::kWrite, 0xdeadbeef}));
  EXPECT_EQ(trace[2], (MemAccess{0x20, Op::kRead, 0}));
  EXPECT_EQ(trace[3], (MemAccess{0x28, Op::kWrite, 0}));
}

TEST(TextTrace, RejectsMalformedInput) {
  auto expect_fail = [](const std::string& body, const std::string& why) {
    std::stringstream ss{body};
    EXPECT_THROW((void)read_text_trace(ss), std::runtime_error) << why;
  };
  expect_fail("X 1000\n", "unknown op");
  expect_fail("R\n", "missing address");
  expect_fail("W 1000\n", "missing value");
  expect_fail("R zzz\n", "bad hex");
  expect_fail("R 1001\n", "misaligned address");
  expect_fail("R 1000 extra\n", "trailing junk");
  expect_fail("W 1000 5 extra\n", "trailing junk");
}

// Pins the diagnostic shape: "text trace <source>:<line>: <defect>".
TEST(TextTrace, ErrorsNameSourceAndLine) {
  std::stringstream ss{"R 1000\nR 1008\nX 1010\n"};
  try {
    (void)read_text_trace(ss);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string{e.what()},
              "text trace <stream>:3: unknown op 'X'");
  }
}

TEST(TextTrace, FileErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "/nvmenc_bad_trace.txt";
  {
    std::ofstream out{path};
    out << "R 1000\nW 1008\n";
  }
  try {
    (void)read_text_trace(path);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string{e.what()},
              "text trace " + path + ":2: missing write value");
  }
}

TEST(TextTrace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nvmenc_text_trace.txt";
  const std::vector<MemAccess> trace{{0x40, Op::kWrite, 0xBEEF},
                                     {0x88, Op::kRead, 0}};
  write_text_trace(path, trace);
  EXPECT_EQ(read_text_trace(path), trace);
  EXPECT_THROW((void)read_text_trace(std::string{"/no/such/file"}),
               std::runtime_error);
}

}  // namespace
}  // namespace nvmenc
