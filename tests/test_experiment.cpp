#include "sim/experiment.hpp"

#include <gtest/gtest.h>
#include <sstream>

namespace nvmenc {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.collector.caches = {
      {.name = "L1", .size_bytes = 4 * kLineBytes, .ways = 2},
      {.name = "L2", .size_bytes = 32 * kLineBytes, .ways = 4},
  };
  c.collector.warmup_accesses = 2000;
  c.collector.measured_accesses = 15000;
  return c;
}

std::vector<WorkloadProfile> two_profiles() {
  WorkloadProfile a = profile_by_name("gcc");
  a.working_set_lines = 256;
  WorkloadProfile b = profile_by_name("bwaves");
  b.working_set_lines = 256;
  return {a, b};
}

TEST(Experiment, MatrixShapeAndLookup) {
  const ExperimentMatrix m = run_experiment(
      two_profiles(), {Scheme::kDcw, Scheme::kReadSae}, small_config());
  ASSERT_EQ(m.benchmarks().size(), 2u);
  ASSERT_EQ(m.schemes().size(), 2u);
  EXPECT_EQ(m.at(0, 0).scheme, "DCW");
  EXPECT_EQ(m.at("gcc", Scheme::kReadSae).benchmark, "gcc");
  EXPECT_THROW((void)m.at("milc", Scheme::kDcw), std::invalid_argument);
  EXPECT_THROW((void)m.at("gcc", Scheme::kCafo), std::invalid_argument);
}

TEST(Experiment, RatiosNormalizeToBaseline) {
  const ExperimentMatrix m = run_experiment(
      two_profiles(), {Scheme::kDcw, Scheme::kReadSae}, small_config());
  EXPECT_DOUBLE_EQ(m.ratio(0, Scheme::kDcw, Scheme::kDcw,
                           metric_total_flips()),
                   1.0);
  const double r =
      m.ratio(0, Scheme::kReadSae, Scheme::kDcw, metric_total_flips());
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);  // READ+SAE reduces flips on gcc-like traffic
}

TEST(Experiment, NormalizedTableLayout) {
  const ExperimentMatrix m = run_experiment(
      two_profiles(), {Scheme::kDcw, Scheme::kFnw}, small_config());
  const TextTable t = m.normalized_table(metric_total_flips(), Scheme::kDcw);
  EXPECT_EQ(t.columns(), 3u);           // benchmark + 2 schemes
  EXPECT_EQ(t.rows(), 3u);              // 2 benchmarks + average
}

TEST(Experiment, LifetimeMetricIsInverseOfFlips) {
  const ExperimentMatrix m = run_experiment(
      two_profiles(), {Scheme::kDcw, Scheme::kReadSae}, small_config());
  const double flips_ratio =
      m.ratio(0, Scheme::kReadSae, Scheme::kDcw, metric_total_flips());
  const double lifetime_ratio =
      m.ratio(0, Scheme::kReadSae, Scheme::kDcw, metric_lifetime());
  EXPECT_NEAR(lifetime_ratio, 1.0 / flips_ratio, 1e-9);
}

TEST(Experiment, ProgressStreamReceivesLines) {
  std::ostringstream progress;
  (void)run_experiment(two_profiles(), {Scheme::kDcw}, small_config(),
                       &progress);
  EXPECT_NE(progress.str().find("gcc"), std::string::npos);
  EXPECT_NE(progress.str().find("bwaves"), std::string::npos);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const ExperimentMatrix a = run_experiment(
      two_profiles(), {Scheme::kReadSae}, small_config());
  const ExperimentMatrix b = run_experiment(
      two_profiles(), {Scheme::kReadSae}, small_config());
  EXPECT_EQ(a.at(0, 0).stats.flips.total(), b.at(0, 0).stats.flips.total());
  EXPECT_EQ(a.at(1, 0).stats.flips.total(), b.at(1, 0).stats.flips.total());
}

TEST(Experiment, BwavesUtilizationFarBelowGcc) {
  // Figure 2's shape must survive the full pipeline: bwaves write-backs
  // are dominated by silent lines.
  const ExperimentMatrix m =
      run_experiment(two_profiles(), {Scheme::kDcw}, small_config());
  const double gcc_util = m.at("gcc", Scheme::kDcw).stats.tag_utilization();
  const double bwaves_util =
      m.at("bwaves", Scheme::kDcw).stats.tag_utilization();
  EXPECT_LT(bwaves_util, 0.35);
  EXPECT_GT(gcc_util, bwaves_util + 0.15);
}

}  // namespace
}  // namespace nvmenc
