#include "nvm/recovery.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "encoding/dcw.hpp"

namespace nvmenc {
namespace {

struct Rig {
  Rig()
      : device{NvmDeviceConfig{},
               [](u64) {
                 DcwEncoder enc;
                 return enc.make_stored({});
               }},
        store{device} {}

  NvmDevice device;
  FaultTolerantStore store;
};

CacheLine random_line(Xoshiro256& rng) {
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, rng.next());
  return line;
}

StoredLine image_of(const CacheLine& line) {
  StoredLine s;
  s.data = line;
  s.meta = BitBuf{0};
  return s;
}

TEST(Recovery, HealthyLinePassesThrough) {
  Rig rig;
  Xoshiro256 rng{1};
  const CacheLine line = random_line(rng);
  ASSERT_TRUE(rig.store.store(0x40, image_of(line), 10));
  EXPECT_EQ(rig.store.load(0x40).data, line);
  EXPECT_EQ(rig.store.faulty_lines(), 0u);
}

TEST(Recovery, RoutesAroundStuckCell) {
  Rig rig;
  Xoshiro256 rng{2};
  // Cell 100 sticks at 0; the data wants a 1 there.
  rig.store.report_fault(0x40, 100, false);
  CacheLine line = random_line(rng);
  line.set_bit(100, true);
  ASSERT_TRUE(rig.store.store(0x40, image_of(line), 10));
  // The raw cells differ from the data (a group is inverted)...
  EXPECT_FALSE(rig.device.load(0x40).data.bit(100));
  // ...but the recovered view is exact.
  EXPECT_EQ(rig.store.load(0x40).data, line);
}

TEST(Recovery, SurvivesManyFaultsOverManyWrites) {
  Rig rig;
  Xoshiro256 rng{3};
  CacheLine line = random_line(rng);
  ASSERT_TRUE(rig.store.store(0x40, image_of(line), 5));
  for (int f = 0; f < 10; ++f) {
    const usize bit = static_cast<usize>(rng.next_below(kLineBits));
    rig.store.report_fault(0x40, bit, rig.device.load(0x40).data.bit(bit));
    line = random_line(rng);
    if (!rig.store.store(0x40, image_of(line), 5)) break;
    ASSERT_EQ(rig.store.load(0x40).data, line) << "after fault " << f;
  }
  EXPECT_EQ(rig.store.faulty_lines(), 1u);
}

TEST(Recovery, ReportsUnrecoverablePatterns) {
  Rig rig;
  // Degenerate codec with 2 groups: 4 alternating-need faults at bits
  // 0..3 defeat every 1-bit index selection (see test_safer.cpp).
  NvmDevice device{NvmDeviceConfig{}, [](u64) {
                     DcwEncoder enc;
                     return enc.make_stored({});
                   }};
  FaultTolerantStore store{device, SaferCodec{1}};
  store.report_fault(0x40, 0, true);
  store.report_fault(0x40, 1, false);
  store.report_fault(0x40, 2, false);
  store.report_fault(0x40, 3, true);
  EXPECT_FALSE(store.store(0x40, image_of(CacheLine{}), 1));
  EXPECT_EQ(store.unrecoverable_lines(), 1u);
}

TEST(Recovery, DefaultCodecExhaustionCountsUnrecoverable) {
  // The hub pattern of test_safer.cpp (cell 0 needs inversion, every cell
  // 2^b forbids it) defeats the full SAFER-32 codec, not just degenerate
  // configurations: store() must refuse and count the line unrecoverable.
  Rig rig;
  rig.store.report_fault(0x40, 0, false);
  for (usize b = 0; b < 9; ++b) {
    rig.store.report_fault(0x40, usize{1} << b, false);
  }
  CacheLine line;
  line.set_bit(0, true);
  EXPECT_FALSE(rig.store.store(0x40, image_of(line), 1));
  EXPECT_EQ(rig.store.unrecoverable_lines(), 1u);
  // A write the stuck cells agree with still lands.
  EXPECT_TRUE(rig.store.store(0x40, image_of(CacheLine{}), 1));
}

TEST(Recovery, StripAndEncodingOfExposeActiveEncoding) {
  Rig rig;
  EXPECT_EQ(rig.store.encoding_of(0x40), nullptr);
  rig.store.report_fault(0x40, 100, false);
  CacheLine line;
  line.set_bit(100, true);
  ASSERT_TRUE(rig.store.store(0x40, image_of(line), 1));
  ASSERT_NE(rig.store.encoding_of(0x40), nullptr);
  const CacheLine raw = rig.device.load(0x40).data;
  EXPECT_NE(raw, line);  // some group is inverted
  EXPECT_EQ(rig.store.strip(0x40, raw), line);
  // strip is an involution: stripping the logical view re-creates raw.
  EXPECT_EQ(rig.store.strip(0x40, line), raw);
}

TEST(Recovery, DuplicateFaultReportsIgnored) {
  Rig rig;
  rig.store.report_fault(0x40, 9, true);
  rig.store.report_fault(0x40, 9, true);
  EXPECT_EQ(rig.store.faulty_lines(), 1u);
  CacheLine line;
  line.set_bit(9, false);
  ASSERT_TRUE(rig.store.store(0x40, image_of(line), 1));
  EXPECT_EQ(rig.store.load(0x40).data, line);
}

TEST(Recovery, MetadataRegionUntouched) {
  // SAFER inversion applies to data cells; encoder metadata passes as-is.
  NvmDevice device{NvmDeviceConfig{}, [](u64) {
                     StoredLine s;
                     s.meta = BitBuf{8};
                     return s;
                   }};
  FaultTolerantStore store{device};
  store.report_fault(0x40, 5, true);
  StoredLine image;
  image.meta = BitBuf{8};
  image.meta.set_bit(3, true);
  image.data.set_bit(5, false);  // conflicts with the stuck value
  ASSERT_TRUE(store.store(0x40, image, 1));
  const StoredLine back = store.load(0x40);
  EXPECT_TRUE(back.meta.bit(3));
  EXPECT_FALSE(back.data.bit(5));
}

}  // namespace
}  // namespace nvmenc
