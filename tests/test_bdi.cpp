#include "compress/bdi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(Bdi, ZeroLine) {
  const BitBuf stream = bdi_compress_line(CacheLine{});
  EXPECT_EQ(stream.size(), 4u);
  EXPECT_EQ(bdi_decompress_line(stream), CacheLine{});
  EXPECT_EQ(bdi_compressed_bits(CacheLine{}), 4u);
}

TEST(Bdi, RepeatedWord) {
  const CacheLine line = CacheLine::filled(0xDEADBEEFCAFEF00Dull);
  const BitBuf stream = bdi_compress_line(line);
  EXPECT_EQ(stream.size(), 4u + 64);
  EXPECT_EQ(bdi_decompress_line(stream), line);
}

TEST(Bdi, Base8Delta1) {
  CacheLine line;
  const u64 base = 0x1000000000ull;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    line.set_word(w, base + w * 7);  // deltas fit 8 signed bits
  }
  const BitBuf stream = bdi_compress_line(line);
  EXPECT_EQ(stream.size(), 4u + 64 + 8 * 8);
  EXPECT_EQ(bdi_decompress_line(stream), line);
}

TEST(Bdi, NegativeDeltas) {
  CacheLine line;
  const u64 base = 0x1000000000ull;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    line.set_word(w, base - w * 3);  // negative deltas from the base
  }
  const BitBuf stream = bdi_compress_line(line);
  EXPECT_EQ(stream.size(), 4u + 64 + 8 * 8);
  EXPECT_EQ(bdi_decompress_line(stream), line);
}

TEST(Bdi, Base4Delta1PointerArray) {
  // Sixteen 32-bit values within a 127-byte window: b4d1 applies (164
  // bits), well under half the line.
  CacheLine line;
  for (usize i = 0; i < 16; ++i) {
    deposit_bits(line.words(), i * 32, 32, 0x40000000u + i * 4);
  }
  const BitBuf stream = bdi_compress_line(line);
  EXPECT_EQ(stream.size(), 4u + 32 + 16 * 8);
  EXPECT_LT(stream.size(), kLineBits / 2);
  EXPECT_EQ(bdi_decompress_line(stream), line);
}

TEST(Bdi, IncompressibleFallsBackToRaw) {
  Xoshiro256 rng{43};
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, rng.next());
  const BitBuf stream = bdi_compress_line(line);
  EXPECT_EQ(stream.size(), 4u + kLineBits);
  EXPECT_EQ(bdi_decompress_line(stream), line);
}

TEST(Bdi, CompressedBitsMatchesStreamSize) {
  Xoshiro256 rng{47};
  for (int i = 0; i < 300; ++i) {
    CacheLine line;
    const u64 base = rng.next();
    for (usize w = 0; w < kWordsPerLine; ++w) {
      switch (rng.next_below(3)) {
        case 0: line.set_word(w, base + (rng.next() & 0x3F)); break;
        case 1: line.set_word(w, base); break;
        default: line.set_word(w, rng.next()); break;
      }
    }
    EXPECT_EQ(bdi_compressed_bits(line), bdi_compress_line(line).size());
  }
}

TEST(Bdi, RandomLinesRoundTrip) {
  Xoshiro256 rng{53};
  for (int i = 0; i < 500; ++i) {
    CacheLine line;
    const u64 base = rng.next();
    for (usize w = 0; w < kWordsPerLine; ++w) {
      switch (rng.next_below(4)) {
        case 0: line.set_word(w, 0); break;
        case 1: line.set_word(w, base + (rng.next() & 0xFF)); break;
        case 2: line.set_word(w, base); break;
        default: line.set_word(w, rng.next()); break;
      }
    }
    EXPECT_EQ(bdi_decompress_line(bdi_compress_line(line)), line);
  }
}

TEST(Bdi, TruncatedStreamThrows) {
  BitBuf cut;
  cut.push_bits(2, 4);  // b8d1 id with no payload
  EXPECT_THROW((void)bdi_decompress_line(cut), std::invalid_argument);
  BitBuf empty;
  EXPECT_THROW((void)bdi_decompress_line(empty), std::invalid_argument);
}

TEST(Bdi, UnknownSchemeIdThrows) {
  BitBuf stream;
  stream.push_bits(9, 4);  // ids 8..14 are undefined
  stream.push_bits(0, 64);
  EXPECT_THROW((void)bdi_decompress_line(stream), std::invalid_argument);
}

}  // namespace
}  // namespace nvmenc
