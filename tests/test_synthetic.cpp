#include "trace/synthetic.hpp"

#include <gtest/gtest.h>
#include <unordered_map>

namespace nvmenc {
namespace {

TEST(SyntheticWorkload, Deterministic) {
  SyntheticWorkload a{profile_by_name("gcc"), 7};
  SyntheticWorkload b{profile_by_name("gcc"), 7};
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SyntheticWorkload, SeedChangesStream) {
  SyntheticWorkload a{profile_by_name("gcc"), 7};
  SyntheticWorkload b{profile_by_name("gcc"), 8};
  bool any_diff = false;
  for (int i = 0; i < 100 && !any_diff; ++i) any_diff = a.next() != b.next();
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticWorkload, AddressesAreWordAlignedAndInWorkingSet) {
  WorkloadProfile p = uniform_profile(256);
  SyntheticWorkload wl{p, 3};
  u64 min_addr = ~u64{0};
  u64 max_addr = 0;
  for (int i = 0; i < 5000; ++i) {
    const MemAccess a = wl.next();
    EXPECT_EQ(a.addr % 8, 0u);
    min_addr = std::min(min_addr, a.line_addr());
    max_addr = std::max(max_addr, a.line_addr());
  }
  EXPECT_LT((max_addr - min_addr) / kLineBytes, 256u);
}

TEST(SyntheticWorkload, InitialLineMatchesPatternFunction) {
  SyntheticWorkload wl{profile_by_name("milc"), 11};
  // Deterministic and stable across calls.
  EXPECT_EQ(wl.initial_line(0x4000), wl.initial_line(0x4000));
}

// Applying the writes to the initial image must track the generator's own
// value model: a replayed image is consistent (silent stores really are
// silent, complements really complement).
TEST(SyntheticWorkload, WritesAreConsistentWithImage) {
  SyntheticWorkload wl{profile_by_name("sjeng"), 13};
  std::unordered_map<u64, CacheLine> image;
  auto line_of = [&](u64 line_addr) -> CacheLine& {
    auto it = image.find(line_addr);
    if (it == image.end()) {
      it = image.emplace(line_addr, wl.initial_line(line_addr)).first;
    }
    return it->second;
  };
  usize silent = 0;
  usize writes = 0;
  for (int i = 0; i < 50000; ++i) {
    const MemAccess a = wl.next();
    if (a.op != Op::kWrite) continue;
    ++writes;
    CacheLine& line = line_of(a.line_addr());
    if (line.word(a.word_index()) == a.value) ++silent;
    line.set_word(a.word_index(), a.value);
  }
  ASSERT_GT(writes, 0u);
  // sjeng's profile has a 30% zero-dirty episode rate; some word writes
  // must be silent, but far from all.
  EXPECT_GT(silent, writes / 50);
  EXPECT_LT(silent, writes / 2);
}

TEST(SyntheticWorkload, UniformProfileModifiesEveryWord) {
  SyntheticWorkload wl{uniform_profile(64), 17};
  std::unordered_map<u64, CacheLine> image;
  for (int i = 0; i < 10000; ++i) {
    const MemAccess a = wl.next();
    ASSERT_EQ(a.op, Op::kWrite);  // uniform profile has no reads
    auto it = image.find(a.line_addr());
    if (it == image.end()) {
      it = image.emplace(a.line_addr(), wl.initial_line(a.line_addr())).first;
    }
    EXPECT_NE(it->second.word(a.word_index()), a.value);
    it->second.set_word(a.word_index(), a.value);
  }
}

TEST(SyntheticWorkload, ReadFractionRoughlyMatchesProfile) {
  WorkloadProfile p = profile_by_name("gcc");
  SyntheticWorkload wl{p, 19};
  usize reads = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) reads += wl.next().op == Op::kRead;
  // gcc: reads_per_episode = 2, expected writes/episode ~= E[M] plus silent
  // rewrites; reads should be a substantial but not dominant fraction.
  EXPECT_GT(reads, n / 10);
  EXPECT_LT(reads, n * 9 / 10);
}

TEST(SyntheticWorkload, ComplementWritesAppearInSjeng) {
  SyntheticWorkload wl{profile_by_name("sjeng"), 23};
  std::unordered_map<u64, CacheLine> image;
  usize complements = 0;
  usize writes = 0;
  for (int i = 0; i < 50000; ++i) {
    const MemAccess a = wl.next();
    if (a.op != Op::kWrite) continue;
    auto it = image.find(a.line_addr());
    if (it == image.end()) {
      it = image.emplace(a.line_addr(), wl.initial_line(a.line_addr())).first;
    }
    ++writes;
    if (a.value == ~it->second.word(a.word_index())) ++complements;
    it->second.set_word(a.word_index(), a.value);
  }
  EXPECT_GT(static_cast<double>(complements) / static_cast<double>(writes),
            0.05);
}

TEST(SyntheticWorkload, NameForwardsProfile) {
  SyntheticWorkload wl{profile_by_name("wrf"), 1};
  EXPECT_EQ(wl.name(), "wrf");
}

}  // namespace
}  // namespace nvmenc
