#include "trace/trace_io.hpp"

#include <gtest/gtest.h>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

/// Writes `trace` to a temp file, lets `corrupt` mangle the raw bytes,
/// writes the result back and returns its path.
std::string corrupted_trace_file(const std::string& name,
                                 const std::vector<MemAccess>& trace,
                                 void (*corrupt)(std::string&)) {
  const std::string path = ::testing::TempDir() + "/" + name;
  write_trace(path, trace);
  std::string bytes;
  {
    std::ifstream in{path, std::ios::binary};
    bytes.assign(std::istreambuf_iterator<char>{in}, {});
  }
  corrupt(bytes);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

std::vector<MemAccess> small_trace() {
  return {{0x40, Op::kWrite, 0xDEAD}, {0x88, Op::kRead, 0},
          {0x1000, Op::kWrite, 42}};
}

TEST(MemAccess, LineAddrAndWordIndex) {
  MemAccess a{.addr = 0x1000 + 3 * 8, .op = Op::kWrite, .value = 7};
  EXPECT_EQ(a.line_addr(), 0x1000u);
  EXPECT_EQ(a.word_index(), 3u);
  MemAccess b{.addr = 0x1040, .op = Op::kRead, .value = 0};
  EXPECT_EQ(b.line_addr(), 0x1040u);
  EXPECT_EQ(b.word_index(), 0u);
}

TEST(TraceIo, EmptyRoundTrip) {
  std::stringstream ss;
  write_trace(ss, {});
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(TraceIo, RoundTripsRecords) {
  std::vector<MemAccess> trace;
  Xoshiro256 rng{5};
  for (int i = 0; i < 1000; ++i) {
    trace.push_back({rng.next() & ~u64{7},
                     rng.next_bool(0.5) ? Op::kWrite : Op::kRead,
                     rng.next()});
  }
  std::stringstream ss;
  write_trace(ss, trace);
  const std::vector<MemAccess> back = read_trace(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (usize i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i], trace[i]) << "record " << i;
  }
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACE-file-content";
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedBody) {
  std::vector<MemAccess> trace{{0x40, Op::kWrite, 1}, {0x80, Op::kRead, 0}};
  std::stringstream ss;
  write_trace(ss, trace);
  std::string data = ss.str();
  data.resize(data.size() - 5);
  std::stringstream cut{data};
  EXPECT_THROW((void)read_trace(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nvmenc_trace_test.bin";
  std::vector<MemAccess> trace{{0x40, Op::kWrite, 0xDEAD},
                               {0x88, Op::kRead, 0}};
  write_trace(path, trace);
  EXPECT_EQ(read_trace(path), trace);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace(std::string{"/no/such/file.bin"}),
               std::runtime_error);
}

// ---- Corruption: every defect must fail with a clean diagnostic that
// names the file, never crash, never return a silent partial read. Both
// readers (eager read_trace and MappedTrace) are held to it.

void expect_rejects(const std::string& path, const std::string& fragment) {
  for (const int reader : {0, 1}) {
    try {
      if (reader == 0) {
        (void)read_trace(path);
      } else {
        MappedTrace trace{path};
        (void)trace;
      }
      FAIL() << (reader == 0 ? "read_trace" : "MappedTrace")
             << " accepted corrupt file " << path;
    } catch (const std::runtime_error& e) {
      const std::string what{e.what()};
      EXPECT_NE(what.find(path), std::string::npos)
          << "diagnostic does not name the file: " << what;
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "diagnostic does not name the defect (want '" << fragment
          << "'): " << what;
    }
  }
}

TEST(TraceIoCorruption, TruncatedTail) {
  const std::string path = corrupted_trace_file(
      "nvmenc_trunc.bin", small_trace(),
      [](std::string& b) { b.resize(b.size() - 5); });
  expect_rejects(path, "truncated");
}

TEST(TraceIoCorruption, TruncatedHeader) {
  const std::string path = corrupted_trace_file(
      "nvmenc_trunc_hdr.bin", small_trace(),
      [](std::string& b) { b.resize(10); });
  expect_rejects(path, "truncated header");
}

TEST(TraceIoCorruption, BadMagic) {
  const std::string path = corrupted_trace_file(
      "nvmenc_badmagic.bin", small_trace(),
      [](std::string& b) { b[0] = 'X'; });
  expect_rejects(path, "bad magic");
}

TEST(TraceIoCorruption, WrongVersion) {
  const std::string path = corrupted_trace_file(
      "nvmenc_badver.bin", small_trace(),
      [](std::string& b) { b[8] = 99; });
  expect_rejects(path, "unsupported version 99");
}

TEST(TraceIoCorruption, RecordSizeMismatch) {
  const std::string path = corrupted_trace_file(
      "nvmenc_badrec.bin", small_trace(),
      [](std::string& b) { b[12] = 23; });
  expect_rejects(path, "record size 23");
}

TEST(TraceIoCorruption, CountBeyondFile) {
  const std::string path = corrupted_trace_file(
      "nvmenc_badcount.bin", small_trace(),
      [](std::string& b) { b[16] = 100; });  // claims 100 records, holds 3
  expect_rejects(path, "truncated");
}

// ---- MappedTrace ------------------------------------------------------

TEST(MappedTrace, ReadsRecordsInPlace) {
  const std::string path = ::testing::TempDir() + "/nvmenc_mmap.bin";
  std::vector<MemAccess> trace;
  Xoshiro256 rng{11};
  for (int i = 0; i < 4096; ++i) {
    trace.push_back({rng.next() & ~u64{7},
                     rng.next_bool(0.5) ? Op::kWrite : Op::kRead,
                     rng.next()});
  }
  write_trace(path, trace);
  MappedTrace mapped{path};
  ASSERT_EQ(mapped.size(), trace.size());
  for (usize i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(mapped[i], trace[i]) << "record " << i;
  }
}

TEST(MappedTrace, EmptyTrace) {
  const std::string path = ::testing::TempDir() + "/nvmenc_mmap_empty.bin";
  write_trace(path, {});
  MappedTrace mapped{path};
  EXPECT_EQ(mapped.size(), 0u);
  EXPECT_TRUE(mapped.empty());
}

TEST(MappedTrace, MoveTransfersTheMapping) {
  const std::string path = ::testing::TempDir() + "/nvmenc_mmap_move.bin";
  write_trace(path, small_trace());
  MappedTrace a{path};
  MappedTrace b{std::move(a)};
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], small_trace()[0]);
  MappedTrace c{path};
  c = std::move(b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], small_trace()[2]);
}

TEST(MappedTrace, MissingFileThrows) {
  EXPECT_THROW(MappedTrace{std::string{"/no/such/file.bin"}},
               std::runtime_error);
}

// ---- TraceWriter ------------------------------------------------------

TEST(TraceWriter, StreamsAndPatchesCount) {
  const std::string path = ::testing::TempDir() + "/nvmenc_writer.bin";
  std::vector<MemAccess> trace;
  Xoshiro256 rng{13};
  {
    TraceWriter writer{path};
    for (int i = 0; i < 1000; ++i) {
      const MemAccess a{rng.next() & ~u64{7},
                        rng.next_bool(0.5) ? Op::kWrite : Op::kRead,
                        rng.next()};
      trace.push_back(a);
      writer.append(a);
    }
    EXPECT_EQ(writer.count(), 1000u);
    writer.close();
  }
  EXPECT_EQ(read_trace(path), trace);
  MappedTrace mapped{path};
  ASSERT_EQ(mapped.size(), trace.size());
  EXPECT_EQ(mapped[999], trace[999]);
}

TEST(TraceWriter, MatchesVectorWriterByteForByte) {
  const std::string a = ::testing::TempDir() + "/nvmenc_w_vec.bin";
  const std::string b = ::testing::TempDir() + "/nvmenc_w_stream.bin";
  const std::vector<MemAccess> trace = small_trace();
  write_trace(a, trace);
  {
    TraceWriter writer{b};
    for (const MemAccess& acc : trace) writer.append(acc);
    writer.close();
  }
  auto slurp = [](const std::string& p) {
    std::ifstream in{p, std::ios::binary};
    return std::string{std::istreambuf_iterator<char>{in}, {}};
  };
  EXPECT_EQ(slurp(a), slurp(b));
}

TEST(TraceWriter, FullDiskFailsLoudlyWithTheFilename) {
  // /dev/full accepts the open and fails every flush with ENOSPC — the
  // classic silent-truncation trap. The writer must name the file in the
  // diagnostic instead of producing a short capture.
  if (!std::ifstream{"/dev/full"}.good()) {
    GTEST_SKIP() << "/dev/full not available on this host";
  }
  bool threw = false;
  try {
    TraceWriter writer{"/dev/full"};
    // Push well past any stream buffer so a flush happens mid-append.
    Xoshiro256 rng{17};
    for (int i = 0; i < 100'000; ++i) {
      writer.append({rng.next() & ~u64{7}, Op::kWrite, rng.next()});
    }
    writer.close();
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_NE(std::string{e.what()}.find("/dev/full"), std::string::npos)
        << "diagnostic must name the file: " << e.what();
  }
  EXPECT_TRUE(threw) << "ENOSPC was swallowed";
}

TEST(TraceWriter, CloseFailureNamesTheFile) {
  if (!std::ifstream{"/dev/full"}.good()) {
    GTEST_SKIP() << "/dev/full not available on this host";
  }
  TraceWriter writer{"/dev/full"};
  // A handful of records stays inside the buffer; the failure must still
  // surface at close(), when the count patch and flush hit the device.
  try {
    for (u64 i = 0; i < 4; ++i) writer.append({i * 8, Op::kRead, 0});
    writer.close();
    FAIL() << "close() on a full disk did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("/dev/full"), std::string::npos)
        << "diagnostic must name the file: " << e.what();
  }
}

}  // namespace
}  // namespace nvmenc
