#include "trace/trace_io.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(MemAccess, LineAddrAndWordIndex) {
  MemAccess a{.addr = 0x1000 + 3 * 8, .op = Op::kWrite, .value = 7};
  EXPECT_EQ(a.line_addr(), 0x1000u);
  EXPECT_EQ(a.word_index(), 3u);
  MemAccess b{.addr = 0x1040, .op = Op::kRead, .value = 0};
  EXPECT_EQ(b.line_addr(), 0x1040u);
  EXPECT_EQ(b.word_index(), 0u);
}

TEST(TraceIo, EmptyRoundTrip) {
  std::stringstream ss;
  write_trace(ss, {});
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(TraceIo, RoundTripsRecords) {
  std::vector<MemAccess> trace;
  Xoshiro256 rng{5};
  for (int i = 0; i < 1000; ++i) {
    trace.push_back({rng.next() & ~u64{7},
                     rng.next_bool(0.5) ? Op::kWrite : Op::kRead,
                     rng.next()});
  }
  std::stringstream ss;
  write_trace(ss, trace);
  const std::vector<MemAccess> back = read_trace(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (usize i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i], trace[i]) << "record " << i;
  }
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACE-file-content";
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedBody) {
  std::vector<MemAccess> trace{{0x40, Op::kWrite, 1}, {0x80, Op::kRead, 0}};
  std::stringstream ss;
  write_trace(ss, trace);
  std::string data = ss.str();
  data.resize(data.size() - 5);
  std::stringstream cut{data};
  EXPECT_THROW((void)read_trace(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nvmenc_trace_test.bin";
  std::vector<MemAccess> trace{{0x40, Op::kWrite, 0xDEAD},
                               {0x88, Op::kRead, 0}};
  write_trace(path, trace);
  EXPECT_EQ(read_trace(path), trace);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace(std::string{"/no/such/file.bin"}),
               std::runtime_error);
}

}  // namespace
}  // namespace nvmenc
