// The lifetime engine (DESIGN.md §13): keyed lognormal endurance draws,
// retention drift vs scrub, wear-leveling translation bijectivity, the
// endurance -> SAFER -> retirement escalation, and the acceptance
// scenarios — aging-enabled serial vs sharded replay bit-identical at any
// jobs count (rendered lifetime/RAS tables included), and run-to-failure
// sustaining strictly more writes under READ+SAE's calibrated flip cost
// than under RAW's write-every-cell cost.
//
// The fuzz case is fixed-seed and short for tier-1 ctest; CI's long mode
// raises the budget via NVMENC_FUZZ_WRITES (see .github/workflows/ci.yml).
#include "memsys/lifetime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memsys/aging.hpp"
#include "memsys/encode_cost.hpp"
#include "memsys/report.hpp"
#include "memsys/trace_replay.hpp"
#include "trace/synthetic.hpp"

namespace nvmenc {
namespace {

u64 fuzz_iterations() {
  if (const char* env = std::getenv("NVMENC_FUZZ_WRITES")) {
    const u64 n = std::strtoull(env, nullptr, 10);
    if (n > 0) return std::max<u64>(n / 100, 3);
  }
  return 3;  // tier-1 budget; the CI fuzz job runs 20000 / 100 = 200
}

std::vector<MemAccess> make_stream(u64 seed, usize n) {
  SyntheticWorkload workload{profile_by_name("gcc"), seed};
  std::vector<MemAccess> accesses;
  accesses.reserve(n);
  for (usize i = 0; i < n; ++i) accesses.push_back(workload.next());
  return accesses;
}

/// Every table a lifetime-enabled replay renders, concatenated — the
/// user-visible byte-identity contract.
std::string render(const TraceReplayConfig& replay,
                   const TraceReplayResult& r) {
  std::ostringstream out;
  replay_table("trace", 3.47, replay, r).print(out);
  ras_table(r.ras).print(out);
  lifetime_table(r.ras).print(out);
  ras_events_table(r.ras).print(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Keyed endurance draws

TEST(LifetimeEngineTest, EnduranceDrawsAreKeyedNotCallOrdered) {
  LifetimeConfig cfg;
  cfg.endurance_mean_flips = 1e6;
  LifetimeEngine fwd{cfg, 2};
  LifetimeEngine rev{cfg, 2};
  std::vector<u64> lines;
  for (u64 l = 0; l < 64; ++l) lines.push_back(l * 131 + 7);

  std::vector<double> a;
  std::vector<double> b;
  for (const u64 l : lines) a.push_back(fwd.limit_flips(l));
  for (usize i = lines.size(); i-- > 0;) {
    b.push_back(rev.limit_flips(lines[i]));
  }
  std::reverse(b.begin(), b.end());
  EXPECT_EQ(a, b);
  for (const double limit : a) EXPECT_GT(limit, 0.0);
}

TEST(LifetimeEngineTest, ChannelsSampleIndependentLimits) {
  LifetimeConfig cfg;
  cfg.endurance_mean_flips = 1e6;
  LifetimeEngine ch0{cfg, 0};
  LifetimeEngine ch1{cfg, 1};
  usize differing = 0;
  for (u64 l = 0; l < 32; ++l) {
    if (ch0.limit_flips(l) != ch1.limit_flips(l)) ++differing;
  }
  EXPECT_GT(differing, 24u);  // lognormal draws; collisions are freak events
}

TEST(LifetimeEngineTest, ZeroSigmaPinsEveryLimitToTheMedian) {
  LifetimeConfig cfg;
  cfg.endurance_mean_flips = 5e4;
  cfg.endurance_sigma = 0.0;
  LifetimeEngine engine{cfg, 0};
  for (u64 l = 0; l < 16; ++l) {
    EXPECT_DOUBLE_EQ(engine.limit_flips(l * 999), 5e4);
  }
}

TEST(LifetimeEngineTest, WearCrossesTheLimitExactlyOnce) {
  LifetimeConfig cfg;
  cfg.endurance_mean_flips = 100.0;
  cfg.endurance_sigma = 0.0;
  LifetimeEngine engine{cfg, 0};
  EXPECT_FALSE(engine.on_write(7, 60.0, 1.0).worn);
  EXPECT_TRUE(engine.on_write(7, 60.0, 2.0).worn);   // 120 >= 100
  EXPECT_FALSE(engine.on_write(7, 60.0, 3.0).worn);  // already crossed
  EXPECT_EQ(engine.stats().worn_lines, 1u);
  EXPECT_DOUBLE_EQ(engine.stats().first_wearout_ns, 2.0);
}

TEST(LifetimeEngineTest, AgeMultiplierScalesWearAccrual) {
  LifetimeConfig cfg;
  cfg.endurance_mean_flips = 100.0;
  cfg.endurance_sigma = 0.0;
  cfg.age_multiplier = 10.0;
  LifetimeEngine engine{cfg, 0};
  EXPECT_TRUE(engine.on_write(1, 10.0, 1.0).worn);  // 10 * 10 >= 100
}

TEST(LifetimeEngineTest, SaferReliefExtendsTheLimit) {
  LifetimeConfig cfg;
  cfg.endurance_mean_flips = 100.0;
  cfg.endurance_sigma = 0.0;
  cfg.safer_relief = 0.5;
  LifetimeEngine engine{cfg, 0};
  EXPECT_TRUE(engine.on_write(3, 100.0, 1.0).worn);
  engine.relieve(3);
  EXPECT_DOUBLE_EQ(engine.limit_flips(3), 150.0);
  EXPECT_FALSE(engine.on_write(3, 40.0, 2.0).worn);  // 140 < 150
  EXPECT_TRUE(engine.on_write(3, 40.0, 3.0).worn);   // 180 >= 150
}

// ---------------------------------------------------------------------------
// Retention drift

TEST(LifetimeEngineTest, DriftGrowsWithTimeSinceWrite) {
  LifetimeConfig cfg;
  cfg.retention_tau_ns = 1e4;
  LifetimeEngine engine{cfg, 0};
  // Long after the (implicit t = 0) write, drift probability approaches
  // 1; right after a refresh it approaches 0.
  usize stale_errors = 0;
  usize fresh_errors = 0;
  for (u64 l = 0; l < 200; ++l) {
    if (engine.drift_on_read(l, 1e6)) ++stale_errors;  // 100 tau stale
  }
  for (u64 l = 0; l < 200; ++l) {
    engine.refresh(l, 1e6);
    if (engine.drift_on_read(l, 1e6 + 1.0)) ++fresh_errors;
  }
  EXPECT_GT(stale_errors, 190u);
  EXPECT_LT(fresh_errors, 10u);
}

TEST(ScrubDriftTest, ScrubIntervalTradesBandwidthAgainstDriftDamage) {
  // The drift-vs-bandwidth trade-off the scrub knob is for. Cold data
  // read repeatedly accumulates drift disturbs until SECDED runs out
  // (two hits = uncorrectable -> retirement); scrub rewrites reset both
  // the disturb counter and the drift clock. Tight scrubbing must pay
  // bandwidth (scrub reads) and in exchange strictly cut the
  // uncorrectable damage on an identical workload.
  // 8 lines written once, then read for tens of thousands of virtual ns:
  // the scrub walker (one line per interval) revisits each line every
  // ~lines/channels * interval ns, so 100 ns scrubbing refreshes every
  // few hundred ns while the unscrubbed run's drift clocks just grow.
  // Arrivals are deliberately sparse (200 ns): back-to-back arrivals
  // would keep the one-shot writes parked in the write queue, and reads
  // of a queued line are FORWARDED from the queue (channel_shard.cpp)
  // without ever touching the array — no array read, no drift draw. The
  // idle gaps let the opportunistic drain land the writes early so every
  // subsequent read is a real array read with a growing drift age.
  std::vector<MemAccess> stream;
  const usize lines = 8;
  for (usize l = 0; l < lines; ++l) {
    stream.push_back({l * kLineBytes, Op::kWrite, 0xabcd});
  }
  for (usize round = 0; round < 30; ++round) {
    for (usize l = 0; l < lines; ++l) {
      stream.push_back({l * kLineBytes, Op::kRead, 0});
    }
  }
  MemSysConfig mem;
  mem.org.channels = 2;
  mem.ras.lifetime.retention_tau_ns = 20'000.0;
  TraceReplayConfig replay;
  replay.inter_arrival_ns = 200.0;

  const auto ras_at = [&](double scrub_ns) {
    MemSysConfig m = mem;
    m.ras.scrub_interval_ns = scrub_ns;
    return replay_trace(stream, replay, m).ras.totals();
  };
  const RasStats tight = ras_at(100.0);
  const RasStats unscrubbed = ras_at(0.0);
  EXPECT_EQ(unscrubbed.scrub_reads, 0u);
  EXPECT_GT(tight.scrub_reads, 0u);          // the bandwidth price...
  EXPECT_GT(tight.scrub_corrections, 0u);    // ...buying real corrections...
  EXPECT_GT(unscrubbed.uncorrectable(), 0u);
  EXPECT_LT(tight.uncorrectable(), unscrubbed.uncorrectable());  // ...paid off
}

// ---------------------------------------------------------------------------
// Wear-leveling translation

TEST(WearLevelTranslatorTest, StartGapFullRotationStaysBijective) {
  // Drive several complete Start-Gap rotations (region_lines + 1 gap moves
  // each) over multiple regions and require, after every write, that the
  // translation is injective and channel-preserving — no two logical
  // lines may ever collide on one physical line.
  LifetimeConfig cfg;
  cfg.leveler = WearLevelerKind::kStartGap;
  cfg.wl_interval = 2;
  cfg.wl_region_lines = 8;
  MemOrg org;
  org.channels = 4;
  const usize channel = 1;
  WearLevelTranslator tr{cfg, org, channel};

  const usize logical_lines = 32;  // 4 regions of 8
  for (usize sweep = 0; sweep < 12; ++sweep) {
    for (usize idx = 0; idx < logical_lines; ++idx) {
      tr.on_write(channel_local_line_addr(org, channel, idx));
      std::set<u64> seen;
      for (usize l = 0; l < logical_lines; ++l) {
        const u64 phys =
            tr.translate(channel_local_line_addr(org, channel, l));
        EXPECT_EQ(channel_of_line(org, phys), channel);
        EXPECT_TRUE(seen.insert(phys).second)
            << "aliased physical line after sweep " << sweep << " write "
            << idx;
      }
    }
  }
  EXPECT_GT(tr.migrations(), 0u);
  // 12 sweeps * 32 writes / interval 2 = 192 gap moves >> one full
  // 9-move rotation per region: every region rotated completely.
  EXPECT_GE(tr.migrations(), 4u * (cfg.wl_region_lines + 1));
}

TEST(WearLevelTranslatorTest, SecurityRefreshStaysBijective) {
  LifetimeConfig cfg;
  cfg.leveler = WearLevelerKind::kSecurityRefresh;
  cfg.wl_interval = 2;
  cfg.wl_region_lines = 8;
  MemOrg org;
  org.channels = 2;
  WearLevelTranslator tr{cfg, org, 0};
  for (usize sweep = 0; sweep < 8; ++sweep) {
    for (usize idx = 0; idx < 16; ++idx) {
      tr.on_write(channel_local_line_addr(org, 0, idx));
    }
    std::set<u64> seen;
    for (usize l = 0; l < 16; ++l) {
      const u64 phys = tr.translate(channel_local_line_addr(org, 0, l));
      EXPECT_EQ(channel_of_line(org, phys), 0u);
      EXPECT_TRUE(seen.insert(phys).second);
    }
  }
}

TEST(WearLevelTranslatorTest, ChannelLocalIndexRoundTrips) {
  MemOrg org;
  org.channels = 4;
  for (usize c = 0; c < org.channels; ++c) {
    for (u64 idx = 0; idx < 64; ++idx) {
      const u64 addr = channel_local_line_addr(org, c, idx);
      EXPECT_EQ(channel_of_line(org, addr), c);
      EXPECT_EQ(channel_local_line_index(org, addr), idx);
    }
  }
}

// ---------------------------------------------------------------------------
// Serial vs sharded with the full aging stack

TEST(LifetimeReplayTest, AgingReplayIsJobsInvariant) {
  // The ctest-enforced acceptance: endurance wear-out, drift, scrub, and a
  // Start-Gap leveler all active — serial and sharded engines must agree
  // bit for bit at every jobs count, rendered lifetime/RAS tables
  // included, across epoch boundaries.
  const std::vector<MemAccess> stream = make_stream(21, 6000);
  TraceReplayConfig replay;
  replay.epoch_accesses = 1000;
  MemSysConfig mem;
  mem.org.channels = 4;
  mem.org.encode_latency_ns = 3.47;
  mem.ras.scrub_interval_ns = 5'000.0;
  // The synthetic stream rewrites most lines only once or twice, so the
  // endurance median sits just above one write's wear: the lognormal left
  // tail wears out a few percent of the touched lines — enough to fire
  // the whole escalation ladder without tripping a channel.
  mem.ras.lifetime.endurance_mean_flips = 150.0;
  mem.ras.lifetime.wear_per_write_flips = 90.0;
  mem.ras.lifetime.retention_tau_ns = 200'000.0;
  mem.ras.lifetime.leveler = WearLevelerKind::kStartGap;
  mem.ras.lifetime.wl_interval = 16;
  mem.ras.lifetime.wl_region_lines = 64;

  const TraceReplayResult serial = replay_trace(stream, replay, mem);
  EXPECT_TRUE(serial.ras.lifetime_any());
  const LifetimeStats life = serial.ras.lifetime_totals();
  EXPECT_GT(life.wear_writes, 0u);
  EXPECT_GT(life.worn_lines, 0u);  // the endurance ladder actually fired
  EXPECT_GT(life.wl_moves, 0u);
  for (usize jobs : {usize{1}, usize{2}, usize{4}}) {
    const TraceReplayResult sharded =
        replay_trace_sharded(stream, replay, mem, jobs);
    EXPECT_EQ(serial, sharded) << "jobs=" << jobs;
    EXPECT_EQ(render(replay, serial), render(replay, sharded))
        << "jobs=" << jobs;
  }
}

TEST(LifetimeReplayTest, AgingSurvivesAMidRunChannelKill) {
  // Leveler remaps, survivor remaps, and the degradation epoch edge all
  // compose in one address chain; killing a channel mid-replay must not
  // cost determinism.
  const std::vector<MemAccess> stream = make_stream(23, 6000);
  TraceReplayConfig replay;
  replay.epoch_accesses = 500;
  MemSysConfig mem;
  mem.org.channels = 4;
  mem.ras.kill_channel = 2;
  mem.ras.kill_at_ns = 20'000.0;
  mem.ras.lifetime.endurance_mean_flips = 50'000.0;
  mem.ras.lifetime.wear_per_write_flips = 90.0;
  mem.ras.lifetime.leveler = WearLevelerKind::kStartGap;
  mem.ras.lifetime.wl_interval = 8;
  mem.ras.lifetime.wl_region_lines = 32;

  const TraceReplayResult serial = replay_trace(stream, replay, mem);
  EXPECT_EQ(serial.ras.totals().degraded, 1u);
  for (usize jobs : {usize{1}, usize{2}, usize{4}}) {
    const TraceReplayResult sharded =
        replay_trace_sharded(stream, replay, mem, jobs);
    EXPECT_EQ(serial, sharded) << "jobs=" << jobs;
    EXPECT_EQ(render(replay, serial), render(replay, sharded))
        << "jobs=" << jobs;
  }
}

TEST(LifetimeLoadGenTest, ShardedClosedLoopIsJobsInvariant) {
  // run_load_sharded pins users to channels (a different workload than the
  // serial closed loop), but its own contract is jobs-invariance — with
  // the aging stack on, every jobs count must produce identical bytes.
  LoadGenConfig load;
  load.requests = 8'000;
  load.footprint_lines = 1024;
  load.read_fraction = 0.6;
  load.seed = 5;
  MemSysConfig mem;
  mem.org.channels = 4;
  mem.ras.scrub_interval_ns = 10'000.0;
  mem.ras.lifetime.endurance_mean_flips = 600.0;  // ~5 writes at this wear
  mem.ras.lifetime.wear_per_write_flips = 120.0;
  mem.ras.lifetime.retention_tau_ns = 300'000.0;
  mem.ras.lifetime.leveler = WearLevelerKind::kSecurityRefresh;
  mem.ras.lifetime.wl_interval = 32;
  mem.ras.lifetime.wl_region_lines = 64;

  const LoadResult one = run_load_sharded(load, mem, 1);
  EXPECT_TRUE(one.ras.lifetime_any());
  EXPECT_GT(one.ras.lifetime_totals().worn_lines, 0u);
  for (usize jobs : {usize{2}, usize{4}}) {
    const LoadResult many = run_load_sharded(load, mem, jobs);
    EXPECT_EQ(one, many) << "jobs=" << jobs;
    std::ostringstream a, b;
    lifetime_table(one.ras).print(a);
    lifetime_table(many.ras).print(b);
    ras_table(one.ras).print(a);
    ras_table(many.ras).print(b);
    EXPECT_EQ(a.str(), b.str()) << "jobs=" << jobs;
  }
}

// ---------------------------------------------------------------------------
// Wear-leveling cost accounting

TEST(LifetimeLoadGenTest, LevelerMigrationsAreCharged) {
  LoadGenConfig load;
  load.requests = 6'000;
  load.footprint_lines = 512;
  load.read_fraction = 0.3;
  load.seed = 13;
  MemSysConfig mem;
  mem.org.channels = 2;
  mem.ras.lifetime.leveler = WearLevelerKind::kStartGap;
  mem.ras.lifetime.wl_interval = 8;
  mem.ras.lifetime.wl_region_lines = 32;

  const LoadResult r = run_load(load, mem);
  const LifetimeStats life = r.ras.lifetime_totals();
  EXPECT_GT(life.wl_writes, 0u);
  EXPECT_GT(life.wl_moves, 0u);
  EXPECT_GT(life.wl_busy_ns, 0.0);    // migrations occupy banks
  EXPECT_GT(life.wl_energy_pj, 0.0);  // and hit the energy ledger
  EXPECT_GT(life.wl_uniformity, 0.0);
}

// ---------------------------------------------------------------------------
// Run to failure

TEST(RunToFailureTest, ReadSaeOutlivesRawUnderIdenticalSeeds) {
  // The acceptance criterion: identical traffic, identical endurance
  // draws; only flips-per-write differs. READ+SAE's calibrated flip cost
  // must sustain strictly more total writes than RAW's write-every-cell
  // cost before the first retirement.
  LoadGenConfig load;
  load.requests = 5'000;
  load.footprint_lines = 256;
  load.read_fraction = 0.5;
  load.seed = 77;
  MemSysConfig mem;
  mem.org.channels = 2;
  mem.ras.lifetime.endurance_mean_flips = 1e5;
  AgingConfig aging;
  aging.epoch_accesses = 500;
  aging.max_passes = 200;

  const auto age_with = [&](double wear_per_write) {
    MemSysConfig m = mem;
    m.ras.lifetime.wear_per_write_flips = wear_per_write;
    return run_to_failure(load, aging, m);
  };
  const SchemeWriteCost sae_cost =
      calibrate_write_cost(Scheme::kReadSae, "gcc", load.seed);
  const AgingResult raw = age_with(static_cast<double>(kLineBits));
  const AgingResult sae = age_with(sae_cost.avg_sets + sae_cost.avg_resets);

  EXPECT_EQ(raw.stop, AgingStop::kFirstRetirement);
  EXPECT_EQ(sae.stop, AgingStop::kFirstRetirement);
  EXPECT_GT(raw.writes_to_first_retirement, 0u);
  EXPECT_GT(sae.writes_to_first_retirement, raw.writes_to_first_retirement);
  EXPECT_GT(sae.total_array_writes, raw.total_array_writes);
}

TEST(RunToFailureTest, IsDeterministicAndCurveIsMonotonic) {
  const std::vector<MemAccess> stream = make_stream(31, 2000);
  AgingConfig aging;
  aging.epoch_accesses = 400;
  aging.max_passes = 100;
  MemSysConfig mem;
  mem.org.channels = 2;
  mem.ras.lifetime.endurance_mean_flips = 5e4;
  mem.ras.lifetime.wear_per_write_flips = 256.0;

  const AgingResult a = run_to_failure(stream, aging, mem);
  const AgingResult b = run_to_failure(stream, aging, mem);
  EXPECT_EQ(a, b);
  ASSERT_GE(a.curve.size(), 2u);
  for (usize i = 1; i < a.curve.size(); ++i) {
    EXPECT_GE(a.curve[i].array_writes, a.curve[i - 1].array_writes);
    EXPECT_GE(a.curve[i].time_ns, a.curve[i - 1].time_ns);
    EXPECT_GE(a.curve[i].retired, a.curve[i - 1].retired);
  }
}

TEST(RunToFailureTest, RequiresAnAgingMechanism) {
  const std::vector<MemAccess> stream = make_stream(1, 100);
  const AgingConfig aging;
  const MemSysConfig mem;  // no endurance, no drift, no leveler
  EXPECT_THROW((void)run_to_failure(stream, aging, mem),
               std::invalid_argument);
}

TEST(AgingConfigTest, ValidateRejectsNonsense) {
  AgingConfig bad;
  bad.inter_arrival_ns = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.epoch_accesses = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.max_passes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.capacity_floor = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(AgingConfigTest, UntilNamesRoundTrip) {
  for (const AgingUntil u :
       {AgingUntil::kRetirement, AgingUntil::kTrip, AgingUntil::kFloor}) {
    EXPECT_EQ(aging_until_by_name(aging_until_name(u)), u);
  }
  EXPECT_THROW((void)aging_until_by_name("entropy"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fuzz: randomized aging configs, serial vs sharded

TEST(LifetimeFuzzTest, RandomAgingConfigsStayJobsInvariant) {
  Xoshiro256 rng{0x11fef022};
  const u64 iterations = fuzz_iterations();
  for (u64 it = 0; it < iterations; ++it) {
    const std::vector<MemAccess> stream =
        make_stream(1000 + it, 1500 + 500 * (it % 3));
    TraceReplayConfig replay;
    replay.epoch_accesses = 250 + 250 * (it % 4);
    MemSysConfig mem;
    mem.org.channels = usize{1} << rng.next_below(3);  // 1, 2 or 4
    mem.ras.lifetime.seed = rng.next();
    mem.ras.lifetime.endurance_mean_flips =
        5'000.0 + 50'000.0 * rng.next_double();
    mem.ras.lifetime.wear_per_write_flips = 30.0 + 200.0 * rng.next_double();
    if (rng.next_bool(0.5)) {
      mem.ras.lifetime.retention_tau_ns = 1e5 + 1e6 * rng.next_double();
      mem.ras.scrub_interval_ns = 2'000.0 + 20'000.0 * rng.next_double();
    }
    const u64 lev = rng.next_below(3);
    if (lev == 1) {
      mem.ras.lifetime.leveler = WearLevelerKind::kStartGap;
    } else if (lev == 2) {
      mem.ras.lifetime.leveler = WearLevelerKind::kSecurityRefresh;
    }
    mem.ras.lifetime.wl_interval = 4 + static_cast<usize>(rng.next_below(28));
    mem.ras.lifetime.wl_region_lines = usize{16} << rng.next_below(3);
    if (rng.next_bool(0.3)) {
      mem.ras.kill_channel = static_cast<int>(
          rng.next_below(static_cast<u64>(mem.org.channels)));
      mem.ras.kill_at_ns = 5'000.0 + 20'000.0 * rng.next_double();
    }

    const TraceReplayResult serial = replay_trace(stream, replay, mem);
    for (const usize jobs : {usize{2}, usize{4}}) {
      const TraceReplayResult sharded =
          replay_trace_sharded(stream, replay, mem, jobs);
      ASSERT_EQ(serial, sharded) << "iteration " << it << " jobs " << jobs;
    }
  }
}

}  // namespace
}  // namespace nvmenc
