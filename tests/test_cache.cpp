#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace nvmenc {
namespace {

CacheConfig tiny_config(usize lines = 8, usize ways = 2) {
  return {.name = "test", .size_bytes = lines * kLineBytes, .ways = ways,
          .hit_latency_cycles = 1};
}

CacheLine line_of(u64 value) {
  CacheLine l;
  l.set_word(0, value);
  return l;
}

TEST(CacheConfig, Validation) {
  EXPECT_NO_THROW(tiny_config().validate());
  CacheConfig bad = tiny_config();
  bad.size_bytes = 100;  // not line aligned
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_config();
  bad.ways = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_config(8, 3);  // 8 lines not divisible into 3 ways
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(CacheConfig, Table2Shapes) {
  for (const CacheConfig& c : table2_hierarchy()) {
    EXPECT_NO_THROW(c.validate());
  }
  const auto t2 = table2_hierarchy();
  EXPECT_EQ(t2[0].size_bytes, 32u * 1024);
  EXPECT_EQ(t2[2].size_bytes, 16u * 1024 * 1024);
  EXPECT_EQ(t2[2].ways, 16u);
  for (const CacheConfig& c : scaled_hierarchy()) {
    EXPECT_NO_THROW(c.validate());
  }
}

TEST(CacheLevel, MissThenHit) {
  CacheLevel cache{tiny_config()};
  EXPECT_FALSE(cache.contains(0x1000));
  EXPECT_EQ(cache.lookup(0x1000), nullptr);
  cache.insert(0x1000, line_of(1), false);
  EXPECT_TRUE(cache.contains(0x1000));
  ASSERT_NE(cache.lookup(0x1000), nullptr);
  EXPECT_EQ(cache.lookup(0x1000)->word(0), 1u);
}

TEST(CacheLevel, InsertOverwritesAndOrsDirty) {
  CacheLevel cache{tiny_config()};
  cache.insert(0x1000, line_of(1), true);
  cache.insert(0x1000, line_of(2), false);
  EXPECT_EQ(cache.lookup(0x1000)->word(0), 2u);
  // Still dirty: eviction must produce a victim.
  const auto victim = cache.invalidate(0x1000);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->data.word(0), 2u);
}

TEST(CacheLevel, LruEviction) {
  // 2-way, 4 sets. Same-set addresses differ by sets*64 bytes.
  CacheLevel cache{tiny_config()};
  const u64 stride = 4 * kLineBytes;
  cache.insert(0 * stride, line_of(10), false);
  cache.insert(1 * stride, line_of(11), false);
  (void)cache.lookup(0 * stride);  // refresh line 0 -> line 1 becomes LRU
  cache.insert(2 * stride, line_of(12), false);
  EXPECT_TRUE(cache.contains(0 * stride));
  EXPECT_FALSE(cache.contains(1 * stride));
  EXPECT_TRUE(cache.contains(2 * stride));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().dirty_evictions, 0u);
}

TEST(CacheLevel, DirtyEvictionReturnsVictim) {
  CacheLevel cache{tiny_config()};
  const u64 stride = 4 * kLineBytes;
  cache.insert(0 * stride, line_of(10), true);
  cache.insert(1 * stride, line_of(11), false);
  const auto victim = cache.insert(2 * stride, line_of(12), false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, 0u * stride);
  EXPECT_EQ(victim->data.word(0), 10u);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(CacheLevel, CleanEvictionIsSilent) {
  CacheLevel cache{tiny_config()};
  const u64 stride = 4 * kLineBytes;
  cache.insert(0 * stride, line_of(10), false);
  cache.insert(1 * stride, line_of(11), false);
  EXPECT_FALSE(cache.insert(2 * stride, line_of(12), false).has_value());
}

TEST(CacheLevel, MarkDirty) {
  CacheLevel cache{tiny_config()};
  EXPECT_FALSE(cache.mark_dirty(0x40));
  cache.insert(0x40, line_of(5), false);
  EXPECT_TRUE(cache.mark_dirty(0x40));
  const auto victim = cache.invalidate(0x40);
  EXPECT_TRUE(victim.has_value());
}

TEST(CacheLevel, InvalidateCleanReturnsNothing) {
  CacheLevel cache{tiny_config()};
  cache.insert(0x40, line_of(5), false);
  EXPECT_FALSE(cache.invalidate(0x40).has_value());
  EXPECT_FALSE(cache.contains(0x40));
}

TEST(CacheLevel, FlushCollectsOnlyDirty) {
  CacheLevel cache{tiny_config()};
  cache.insert(0x40, line_of(1), true);
  cache.insert(0x80, line_of(2), false);
  cache.insert(0xC0, line_of(3), true);
  std::vector<Victim> out;
  cache.flush(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(cache.resident_lines(), 0u);
}

TEST(CacheLevel, ResidentLinesCounts) {
  CacheLevel cache{tiny_config()};
  EXPECT_EQ(cache.resident_lines(), 0u);
  cache.insert(0x40, line_of(1), false);
  cache.insert(0x80, line_of(2), false);
  EXPECT_EQ(cache.resident_lines(), 2u);
}

TEST(CacheStats, HitRate) {
  CacheStats s;
  EXPECT_EQ(s.hit_rate(), 0.0);
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

TEST(CacheLevel, CapacityNeverExceeded) {
  CacheLevel cache{tiny_config(8, 2)};
  for (u64 i = 0; i < 100; ++i) {
    cache.insert(i * kLineBytes, line_of(i), i % 2 == 0);
  }
  EXPECT_LE(cache.resident_lines(), 8u);
}

}  // namespace
}  // namespace nvmenc
