#include "memsys/memory_system.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "memsys/encode_cost.hpp"
#include "memsys/loadgen.hpp"
#include "memsys/sweep.hpp"

namespace nvmenc {
namespace {

MemSysConfig small_config() {
  MemSysConfig c;
  c.org.channels = 2;
  c.org.banks = 2;
  c.write_queue_capacity = 8;
  c.high_watermark = 6;
  c.low_watermark = 2;
  return c;
}

/// Steps until the next completion with an effectively unbounded horizon.
std::optional<MemSysCompletion> step(MemorySystem& sys) {
  return sys.step_until(1e18);
}

TEST(MemSysConfig, Validation) {
  MemSysConfig c = small_config();
  EXPECT_NO_THROW(c.validate());
  c.high_watermark = 9;  // > capacity
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.low_watermark = 6;  // == high
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_config();
  c.high_watermark = c.write_queue_capacity;  // edge: high == capacity
  EXPECT_NO_THROW(c.validate());
  c.low_watermark = 0;  // edge: drain runs the queue dry
  EXPECT_NO_THROW(c.validate());
  c = small_config();
  c.t_cmd_ns = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MemorySystem, SingleReadCompletes) {
  MemorySystem sys{small_config()};
  const u64 ticket = sys.submit(0, ReqKind::kRead, 0.0);
  const auto comp = step(sys);
  ASSERT_TRUE(comp.has_value());
  EXPECT_EQ(comp->ticket, ticket);
  EXPECT_EQ(comp->kind, ReqKind::kRead);
  EXPECT_FALSE(comp->forwarded);
  // Cold access: row miss + array read + bus.
  const MemOrg& org = sys.config().org;
  EXPECT_DOUBLE_EQ(comp->time_ns,
                   org.t_row_cycle_ns + org.t_read_ns + org.t_bus_ns);
  EXPECT_EQ(sys.stats().reads, 1u);
  EXPECT_TRUE(sys.idle());
}

TEST(MemorySystem, StepUntilHonorsHorizon) {
  MemorySystem sys{small_config()};
  sys.submit(0, ReqKind::kRead, 0.0);
  // The read cannot finish by t=10, so nothing is delivered yet.
  EXPECT_FALSE(sys.step_until(10.0).has_value());
  EXPECT_TRUE(step(sys).has_value());
}

TEST(MemorySystem, WriteIsPostedImmediately) {
  MemorySystem sys{small_config()};
  const u64 ticket = sys.submit(0, ReqKind::kWrite, 5.0);
  const auto comp = sys.step_until(5.0);
  ASSERT_TRUE(comp.has_value());
  EXPECT_EQ(comp->ticket, ticket);
  EXPECT_EQ(comp->kind, ReqKind::kWrite);
  EXPECT_DOUBLE_EQ(comp->time_ns, 5.0);  // accepted at arrival
}

TEST(MemorySystem, ReadAroundWriteForwards) {
  MemSysConfig c = small_config();
  c.opportunistic_writes = false;  // keep the write queued
  MemorySystem sys{c};
  sys.submit(0x40, ReqKind::kWrite, 0.0);
  (void)sys.step_until(0.0);  // write acceptance
  sys.submit(0x40, ReqKind::kRead, 1.0);
  const auto comp = sys.step_until(1.0);
  ASSERT_TRUE(comp.has_value());
  EXPECT_TRUE(comp->forwarded);
  EXPECT_DOUBLE_EQ(comp->time_ns, 1.0);  // forward_ns defaults to 0
  EXPECT_EQ(sys.stats().forwarded_reads, 1u);
}

TEST(MemorySystem, RewritesCoalesce) {
  MemSysConfig c = small_config();
  c.opportunistic_writes = false;
  MemorySystem sys{c};
  sys.submit(0x40, ReqKind::kWrite, 0.0);
  sys.submit(0x40, ReqKind::kWrite, 1.0);
  sys.submit(0x40, ReqKind::kWrite, 2.0);
  EXPECT_EQ(sys.write_queue_depth(0), 1u);
  EXPECT_EQ(sys.stats().coalesced_writes, 2u);
  sys.drain_all();
  EXPECT_EQ(sys.stats().array_writes, 1u);  // one line hit the array
  EXPECT_EQ(sys.stats().writes, 3u);        // but all three were accepted
}

TEST(MemorySystem, WatermarkEntersAndLeavesDrainMode) {
  MemSysConfig c = small_config();
  c.opportunistic_writes = false;  // drain only via the watermark
  MemorySystem sys{c};
  // All writes land on channel 0 (same row id space, distinct lines).
  for (u64 i = 0; i < 5; ++i) {
    sys.submit(i * kLineBytes, ReqKind::kWrite, 0.0);
  }
  while (sys.step_until(0.0).has_value()) {
  }
  EXPECT_EQ(sys.stats().drains, 0u);  // below the high watermark
  EXPECT_EQ(sys.write_queue_depth(0), 5u);
  sys.submit(5 * kLineBytes, ReqKind::kWrite, 0.0);  // depth 6 == high
  EXPECT_EQ(sys.stats().drains, 1u);
  // Arbitration drains down to the low watermark, then stops.
  while (step(sys).has_value()) {
  }
  EXPECT_EQ(sys.write_queue_depth(0), c.low_watermark);
  EXPECT_EQ(sys.stats().array_writes, 4u);
}

TEST(MemorySystem, HighEqualsCapacityLowZeroDrainsDry) {
  MemSysConfig c = small_config();
  c.opportunistic_writes = false;
  c.write_queue_capacity = 4;
  c.high_watermark = 4;  // edge: only a full queue triggers the drain
  c.low_watermark = 0;   // edge: the drain runs the queue dry
  MemorySystem sys{c};
  for (u64 i = 0; i < 4; ++i) {
    sys.submit(i * kLineBytes, ReqKind::kWrite, 0.0);
  }
  EXPECT_EQ(sys.stats().drains, 1u);
  while (step(sys).has_value()) {
  }
  EXPECT_EQ(sys.write_queue_depth(0), 0u);
  EXPECT_EQ(sys.stats().array_writes, 4u);
}

TEST(MemorySystem, FullQueueParksWritesUntilDrain) {
  MemSysConfig c = small_config();
  c.opportunistic_writes = false;
  c.write_queue_capacity = 2;
  c.high_watermark = 2;
  c.low_watermark = 0;
  c.org.channels = 1;
  MemorySystem sys{c};
  // A read occupies the single bank first so the drain cannot issue (and
  // thus cannot free a slot) until it finishes.
  sys.submit(3 * kLineBytes, ReqKind::kRead, 0.0);
  (void)sys.step_until(0.0);  // the read issues now, bank busy until ~168
  // Third distinct line exceeds capacity; its acceptance must wait for
  // the drain the second write triggered.
  sys.submit(0 * kLineBytes, ReqKind::kWrite, 1.0);
  sys.submit(1 * kLineBytes, ReqKind::kWrite, 2.0);
  sys.submit(2 * kLineBytes, ReqKind::kWrite, 3.0);
  EXPECT_EQ(sys.stats().write_stalls, 1u);
  std::vector<MemSysCompletion> comps;
  while (const auto comp = step(sys)) comps.push_back(*comp);
  ASSERT_EQ(comps.size(), 4u);  // 1 read + 3 writes
  // The parked write's acceptance waited for the bank-busy drain: its
  // completion time is well past its arrival.
  EXPECT_EQ(comps.back().kind, ReqKind::kWrite);
  EXPECT_GT(comps.back().time_ns, 100.0);
  EXPECT_GT(sys.stats().write_accept_ns.max(), 0.0);
  sys.drain_all();
  EXPECT_EQ(sys.stats().array_writes, 3u);
  EXPECT_TRUE(sys.idle());
}

TEST(MemorySystem, ReadsHavePriorityOverQueuedWrites) {
  MemSysConfig c = small_config();
  c.org.channels = 1;
  c.org.banks = 1;
  c.org.ranks = 1;
  MemorySystem sys{c};
  // Queue writes below the watermark, then a read: the read must be
  // served before any background write occupies the (single) bank.
  sys.submit(0 * kLineBytes, ReqKind::kWrite, 0.0);
  sys.submit(1 * kLineBytes, ReqKind::kWrite, 0.0);
  sys.submit(2 * kLineBytes, ReqKind::kRead, 0.0);
  std::optional<MemSysCompletion> read_comp;
  while (const auto comp = step(sys)) {
    if (comp->kind == ReqKind::kRead) read_comp = comp;
  }
  ASSERT_TRUE(read_comp.has_value());
  const MemOrg& org = sys.config().org;
  // Served first: cold-row read latency, no 150 ns write ahead of it.
  EXPECT_DOUBLE_EQ(read_comp->time_ns,
                   org.t_row_cycle_ns + org.t_read_ns + org.t_bus_ns);
}

TEST(MemorySystem, CompletionsAreMonotonicAndComplete) {
  MemorySystem sys{small_config()};
  Xoshiro256 rng{7};
  double t = 0.0;
  usize submitted = 0;
  double last = -1.0;
  usize delivered = 0;
  for (usize i = 0; i < 400; ++i) {
    t += static_cast<double>(rng.next_below(40));
    sys.submit(rng.next_below(64) * kLineBytes,
               rng.next_bool(0.6) ? ReqKind::kRead : ReqKind::kWrite, t);
    ++submitted;
    while (const auto comp = sys.step_until(t)) {
      EXPECT_GE(comp->time_ns, last);
      last = comp->time_ns;
      ++delivered;
    }
  }
  while (const auto comp = step(sys)) {
    EXPECT_GE(comp->time_ns, last);
    last = comp->time_ns;
    ++delivered;
  }
  EXPECT_EQ(delivered, submitted);
  sys.drain_all();
  EXPECT_TRUE(sys.idle());
}

TEST(Zipfian, RanksInRangeAndSkewed) {
  ZipfianSampler zipf{1000, 0.99};
  Xoshiro256 rng{3};
  usize top = 0;
  for (usize i = 0; i < 20'000; ++i) {
    const u64 r = zipf.sample(rng);
    ASSERT_LT(r, 1000u);
    if (r == 0) ++top;
  }
  // Rank 0 holds far more than the uniform 1/1000 share.
  EXPECT_GT(top, 2000u);
  EXPECT_THROW((ZipfianSampler{1000, 1.5}), std::invalid_argument);
  EXPECT_THROW((ZipfianSampler{1, 0.99}), std::invalid_argument);
}

TEST(AddressSampler, DiurnalShiftsTheMap) {
  LoadGenConfig cfg;
  cfg.pattern = LoadPattern::kDiurnal;
  cfg.requests = 1000;
  cfg.diurnal_phases = 2;
  cfg.diurnal_shift = 0.5;
  cfg.footprint_lines = 1024;
  const AddressSampler sampler{cfg};
  // Same rng stream, different phase clock: the map rotates by exactly
  // shift * footprint.
  Xoshiro256 a{9};
  Xoshiro256 b{9};
  for (usize i = 0; i < 200; ++i) {
    const u64 phase0 = sampler.draw(a, 0);
    const u64 phase1 = sampler.draw(b, cfg.requests - 1);
    EXPECT_EQ((phase0 + 512) % 1024, phase1);
  }
}

TEST(LoadGen, ValidationAndAccounting) {
  LoadGenConfig load;
  load.users = 0;
  EXPECT_THROW(load.validate(), std::invalid_argument);
  load = LoadGenConfig{};
  load.read_fraction = 1.5;
  EXPECT_THROW(load.validate(), std::invalid_argument);

  load = LoadGenConfig{};
  load.requests = 3000;
  load.footprint_lines = 4096;
  load.users = 8;
  load.think_ns = 50.0;
  const LoadResult r = run_load(load, small_config());
  EXPECT_EQ(r.stats.reads + r.stats.writes, load.requests);
  EXPECT_EQ(r.stats.read_latency_ns.count(), r.stats.reads);
  EXPECT_GT(r.stats.sustained_gbps(), 0.0);
  EXPECT_GT(r.makespan_ns, 0.0);
  EXPECT_GE(r.makespan_ns, r.stats.last_completion_ns);
}

TEST(LoadGen, BitIdenticalAcrossRuns) {
  LoadGenConfig load;
  load.requests = 5000;
  load.footprint_lines = 4096;
  load.users = 16;
  load.think_ns = 80.0;
  const LoadResult a = run_load(load, small_config());
  const LoadResult b = run_load(load, small_config());
  EXPECT_EQ(a.stats.reads, b.stats.reads);
  EXPECT_EQ(a.stats.drains, b.stats.drains);
  EXPECT_EQ(a.stats.forwarded_reads, b.stats.forwarded_reads);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);  // exact, not approximate
  EXPECT_EQ(a.stats.read_latency_ns.p99(), b.stats.read_latency_ns.p99());
  EXPECT_EQ(a.stats.read_latency_ns.mean(), b.stats.read_latency_ns.mean());
}

TEST(EncodeCost, ModelsAndNames) {
  EXPECT_EQ(encode_model_by_name("paper"), EncodeLatencyModel::kPaper);
  EXPECT_EQ(encode_model_by_name("measured"), EncodeLatencyModel::kMeasured);
  EXPECT_EQ(encode_model_by_name("none"), EncodeLatencyModel::kNone);
  EXPECT_THROW((void)encode_model_by_name("fast"), std::invalid_argument);
  EXPECT_DOUBLE_EQ(paper_encode_ns(Scheme::kReadSae), 3.47);
  EXPECT_DOUBLE_EQ(paper_encode_ns(Scheme::kDcw), 0.0);
  EXPECT_DOUBLE_EQ(
      encode_latency_ns(Scheme::kReadSae, EncodeLatencyModel::kNone), 0.0);
  // The software kernel is orders slower than the synthesized circuit.
  EXPECT_GT(measured_encode_ns(Scheme::kReadSae),
            paper_encode_ns(Scheme::kReadSae));
}

TEST(EncodeCost, CalibrationIsDeterministicAndSane) {
  const SchemeWriteCost a =
      calibrate_write_cost(Scheme::kReadSae, "gcc", 42, 32, 3);
  const SchemeWriteCost b =
      calibrate_write_cost(Scheme::kReadSae, "gcc", 42, 32, 3);
  EXPECT_EQ(a.avg_sets, b.avg_sets);
  EXPECT_EQ(a.avg_resets, b.avg_resets);
  EXPECT_GT(a.avg_sets + a.avg_resets, 0.0);
  EXPECT_GT(a.meta_bits, 0.0);
  EXPECT_GT(a.write_pj(EnergyParams{}, true),
            a.write_pj(EnergyParams{}, false));
  EXPECT_THROW((void)calibrate_write_cost(Scheme::kReadSaePaper, "gcc", 42),
               std::invalid_argument);
}

TEST(Sweep, JobsDoNotChangeResults) {
  SweepConfig cfg;
  cfg.load.requests = 2000;
  cfg.load.footprint_lines = 2048;
  cfg.load.users = 8;
  cfg.mem = small_config();
  cfg.think_points = {400.0, 50.0};
  cfg.schemes = {{Scheme::kDcw, EncodeLatencyModel::kPaper},
                 {Scheme::kReadSae, EncodeLatencyModel::kMeasured}};
  cfg.jobs = 1;
  const std::vector<SweepCell> serial = run_saturation_sweep(cfg);
  cfg.jobs = 4;
  const std::vector<SweepCell> parallel = run_saturation_sweep(cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 4u);  // 2 schemes x 2 load points
  for (usize i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scheme_label, parallel[i].scheme_label);
    EXPECT_EQ(serial[i].load.makespan_ns, parallel[i].load.makespan_ns);
    EXPECT_EQ(serial[i].load.stats.read_latency_ns.p99(),
              parallel[i].load.stats.read_latency_ns.p99());
    EXPECT_EQ(serial[i].load.stats.drains, parallel[i].load.stats.drains);
    EXPECT_EQ(serial[i].write_pj, parallel[i].write_pj);
  }
  // The measured-latency encoder must cost tail latency at high load
  // relative to DCW's free encode — the trade-off the sweep quantifies.
  EXPECT_GE(serial[3].load.stats.read_latency_ns.p99(),
            serial[1].load.stats.read_latency_ns.p99());
}

}  // namespace
}  // namespace nvmenc
