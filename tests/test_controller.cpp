#include "nvm/controller.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/schemes.hpp"
#include "encoding/dcw.hpp"
#include "wear/wear_leveler.hpp"

namespace nvmenc {
namespace {

struct Rig {
  explicit Rig(Scheme scheme, ControllerConfig config = {})
      : encoder_for_init{make_encoder(scheme)},
        device{NvmDeviceConfig{},
               [this](u64) { return encoder_for_init->make_stored({}); }},
        controller{config, make_encoder(scheme), device} {}

  EncoderPtr encoder_for_init;
  NvmDevice device;
  MemoryController controller;
};

TEST(Controller, RequiresEncoder) {
  NvmDevice dev{NvmDeviceConfig{}, [](u64) {
                  StoredLine s;
                  s.meta = BitBuf{0};
                  return s;
                }};
  EXPECT_THROW(MemoryController({}, nullptr, dev), std::invalid_argument);
}

TEST(Controller, ReadCountsAndEnergy) {
  Rig rig{Scheme::kDcw};
  (void)rig.controller.read_line(0x40);
  (void)rig.controller.read_line(0x80);
  const ControllerStats& s = rig.controller.stats();
  EXPECT_EQ(s.demand_reads, 2u);
  const EnergyParams p;
  EXPECT_DOUBLE_EQ(s.energy.read_pj, 2.0 * 512 * p.read_pj_per_bit);
  EXPECT_DOUBLE_EQ(s.energy.busy_ns, 2.0 * p.read_latency_ns);
}

TEST(Controller, WriteFlipAccountingMatchesClosedForm) {
  Rig rig{Scheme::kDcw};
  CacheLine line;
  line.set_word(0, 0xF);  // 4 set bits over an all-zero device line
  rig.controller.write_line(0x40, line);
  const ControllerStats& s = rig.controller.stats();
  EXPECT_EQ(s.writebacks, 1u);
  EXPECT_EQ(s.flips.total(), 4u);
  EXPECT_EQ(s.flips.sets, 4u);
  EXPECT_EQ(s.flips.resets, 0u);
  const EnergyParams p;
  EXPECT_DOUBLE_EQ(s.energy.write_pj, 4.0 * p.set_pj);
  // Read-before-write senses the full line.
  EXPECT_DOUBLE_EQ(s.energy.read_pj, 512 * p.read_pj_per_bit);
}

TEST(Controller, SilentWritebackCounted) {
  Rig rig{Scheme::kDcw};
  rig.controller.write_line(0x40, CacheLine{});  // identical to pristine
  EXPECT_EQ(rig.controller.stats().silent_writebacks, 1u);
  EXPECT_EQ(rig.controller.stats().dirty_words.count(0), 1u);
  EXPECT_EQ(rig.controller.stats().flips.total(), 0u);
}

TEST(Controller, DirtyWordHistogram) {
  Rig rig{Scheme::kDcw};
  CacheLine line;
  line.set_word(1, 5);
  line.set_word(2, 6);
  rig.controller.write_line(0x40, line);
  line.set_word(3, 7);
  rig.controller.write_line(0x40, line);
  const Histogram& h = rig.controller.stats().dirty_words;
  EXPECT_EQ(h.count(2), 1u);  // first write dirtied 2 words
  EXPECT_EQ(h.count(1), 1u);  // second write dirtied 1 more
  EXPECT_NEAR(rig.controller.stats().tag_utilization(), 1.5 / 8.0, 1e-12);
}

TEST(Controller, ReadBackDecodesWrites) {
  for (Scheme scheme : paper_schemes()) {
    Rig rig{scheme};
    Xoshiro256 rng{7};
    CacheLine line;
    for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, rng.next());
    rig.controller.write_line(0x40, line);
    EXPECT_EQ(rig.controller.read_line(0x40), line) << scheme_name(scheme);
  }
}

TEST(Controller, EncodeLogicChargedWhenConfigured) {
  ControllerConfig config;
  config.charge_encode_logic = true;
  Rig rig{Scheme::kReadSae, config};
  CacheLine line;
  line.set_word(0, 1);
  rig.controller.write_line(0x40, line);
  EXPECT_DOUBLE_EQ(rig.controller.stats().energy.logic_pj,
                   EnergyParams{}.encode_logic_pj);

  Rig no_logic{Scheme::kReadSae};
  no_logic.controller.write_line(0x40, line);
  EXPECT_DOUBLE_EQ(no_logic.controller.stats().energy.logic_pj, 0.0);
}

TEST(Controller, DeviceFlipTotalsMatchStats) {
  Rig rig{Scheme::kReadSae};
  Xoshiro256 rng{11};
  for (int i = 0; i < 100; ++i) {
    CacheLine line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if (rng.next_bool(0.4)) line.set_word(w, rng.next());
    }
    rig.controller.write_line((rng.next_below(16)) * kLineBytes, line);
  }
  EXPECT_EQ(rig.device.total_flips(),
            rig.controller.stats().flips.total());
}

TEST(Controller, NotifiesWearLeveler) {
  IdealWearLeveler wl{64};
  ControllerConfig config;
  NvmDevice dev{NvmDeviceConfig{}, [](u64) {
                  DcwEncoder enc;
                  return enc.make_stored({});
                }};
  MemoryController controller{config, std::make_unique<DcwEncoder>(), dev,
                              &wl};
  CacheLine line;
  line.set_word(0, 0xFF);
  controller.write_line(0x40, line);
  EXPECT_EQ(wl.report().mean_wear * 64, 8.0);
}

TEST(Controller, ResetStatsClearsCountersOnly) {
  Rig rig{Scheme::kDcw};
  CacheLine line;
  line.set_word(0, 1);
  rig.controller.write_line(0x40, line);
  rig.controller.reset_stats();
  EXPECT_EQ(rig.controller.stats().writebacks, 0u);
  EXPECT_EQ(rig.controller.stats().flips.total(), 0u);
  // Stored state is untouched: the line still reads back.
  EXPECT_EQ(rig.controller.read_line(0x40), line);
}

}  // namespace
}  // namespace nvmenc
