// Tests of the paper's contribution: READ (Section 3.1), SAE (Section 3.2)
// and their combination (Section 3.3), including the Table 1 granularity
// arithmetic and the clean-word plaintext invariant the decode path
// (Figure 8) depends on.
#include "core/read_sae.hpp"

#include <gtest/gtest.h>

#include "encoder_test_util.hpp"
#include "encoding/dcw.hpp"
#include "core/paper_model.hpp"
#include "encoding/mask_coset.hpp"

namespace nvmenc {
namespace {

TEST(AdaptiveConfig, Validation) {
  EXPECT_NO_THROW(AdaptiveConfig{}.validate());
  AdaptiveConfig bad;
  bad.tag_budget = 24;  // not a power of two
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.tag_budget = 128;  // > 64
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.granularity_levels = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.granularity_levels = 5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.tag_budget = 4;
  bad.granularity_levels = 4;  // coarsest level: 4 >> 3 = 0 tags
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ReadSae, PaperCapacityOverheads) {
  // Section 3.4.1 / Section 4.1: READ 40/512 = 7.8%, READ+SAE 42/512 = 8.2%.
  EXPECT_EQ(make_read()->meta_bits(), 40u);
  EXPECT_EQ(make_read_sae()->meta_bits(), 42u);
  EXPECT_NEAR(make_read()->capacity_overhead(), 0.078, 0.001);
  EXPECT_NEAR(make_read_sae()->capacity_overhead(), 0.082, 0.001);
}

TEST(ReadSae, Names) {
  EXPECT_EQ(make_read()->name(), "READ");
  EXPECT_EQ(make_read_sae()->name(), "READ+SAE");
  EXPECT_EQ(make_sae_only()->name(), "SAE");
}

TEST(ReadSae, TagBitLayout) {
  const EncoderPtr enc = make_read_sae();
  for (usize i = 0; i < 32; ++i) EXPECT_TRUE(enc->is_tag_bit(i));
  for (usize i = 32; i < 42; ++i) EXPECT_FALSE(enc->is_tag_bit(i));
}

TEST(ReadSae, Table1Granularities) {
  // Table 1 with N = 32: granularity = 64M/N, 128M/N, 256M/N, 512M/N.
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(4, 32, 0), 8u);
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(4, 32, 1), 16u);
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(4, 32, 2), 32u);
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(4, 32, 3), 64u);
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(8, 32, 0), 16u);
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(1, 32, 0), 2u);
  // The paper's Figure 4 example: 4 dirty words, 8 tag bits each -> g = 8.
  EXPECT_EQ(ReadSaeEncoder::granularity_bits(4, 32, 0), 8u);
}

class ReadSaeVariants : public ::testing::TestWithParam<int> {
 protected:
  EncoderPtr make() const {
    switch (GetParam()) {
      case 0: return make_read();
      case 1: return make_read_sae();
      case 2: return make_sae_only();
      case 3: return make_read(16);
      case 4: return make_read_sae(64);
      default: return make_read_sae(16);
    }
  }
};

TEST_P(ReadSaeVariants, RoundTripsAllWriteClasses) {
  const EncoderPtr enc = make();
  testutil::exercise_encoder(*enc, 8080 + static_cast<u64>(GetParam()), 500);
}

INSTANTIATE_TEST_SUITE_P(Variants, ReadSaeVariants,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(ReadSae, SilentWritebackIsCompletelyFree) {
  const EncoderPtr enc = make_read_sae();
  Xoshiro256 rng{17};
  CacheLine line = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(line);
  const FlipBreakdown fb = enc->encode(stored, line);
  EXPECT_EQ(fb.total(), 0u);
  // Also free after real writes populated tag and flag state.
  CacheLine next = line;
  next.set_word(2, rng.next());
  (void)enc->encode(stored, next);
  EXPECT_EQ(enc->encode(stored, next).total(), 0u);
}

TEST(ReadSae, CleanWordsAreStoredPlaintext) {
  // The Figure 8 decode invariant: any word outside the stored dirty flag
  // must hold its logical value verbatim.
  const EncoderPtr enc = make_read_sae();
  Xoshiro256 rng{19};
  CacheLine logical = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(logical);
  for (int i = 0; i < 400; ++i) {
    logical = testutil::next_line(
        rng, logical, testutil::kAllWriteClasses[rng.next_below(6)]);
    (void)enc->encode(stored, logical);
    const u8 dirty = static_cast<u8>(stored.meta.bits(32, 8));
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if (!((dirty >> w) & 1)) {
        ASSERT_EQ(stored.data.word(w), logical.word(w))
            << "clean word " << w << " not plaintext, iter " << i;
      }
    }
  }
}

TEST(ReadSae, SequentialFlipsUseCoarseGranularity) {
  // The paper's Figure 5 case: old and new are bitwise complements. SAE
  // should pick the coarsest granularity; the total cost is bounded by the
  // few tags of that option (4 with N = 32) plus the flag updates.
  const EncoderPtr sae = make_read_sae();
  const EncoderPtr read_only = make_read();
  Xoshiro256 rng{23};
  const CacheLine line = testutil::random_line(rng);

  StoredLine s1 = sae->make_stored(line);
  StoredLine s2 = read_only->make_stored(line);
  const FlipBreakdown f1 = sae->encode(s1, ~line);
  const FlipBreakdown f2 = read_only->encode(s2, ~line);

  EXPECT_EQ(f1.data, 0u);
  EXPECT_LE(f1.tag, 4u);   // coarsest option: 32 >> 3 tags
  EXPECT_LE(f1.flag, 10u); // dirty flag (8) + granularity flag (2)
  EXPECT_EQ(f2.data, 0u);
  EXPECT_EQ(f2.tag, 32u);  // READ must set every tag
  EXPECT_LT(f1.total(), f2.total());
  // Section 3.2: the stored granularity flag must be the coarsest.
  EXPECT_EQ(s1.meta.bits(40, 2), 3u);
}

TEST(ReadSae, PaperFigure5Numbers) {
  // 64-bit sequential flip with 16/8/1 tag options: fewer tags win.
  // Reproduced at line scale: one dirty word (M = 1), complement write.
  const EncoderPtr enc = make_read_sae();
  CacheLine line;
  line.set_word(0, 0);
  StoredLine stored = enc->make_stored(line);
  CacheLine next = line;
  next.set_word(0, ~u64{0});
  const FlipBreakdown fb = enc->encode(stored, next);
  // M = 1: options are 32/16/8/4 tags over 64 bits. Coarsest = 4 tags all
  // set; data fully flipped-by-tag (0 data flips); dirty flag 1 bit;
  // granularity flag 2 bits.
  EXPECT_EQ(fb.data, 0u);
  EXPECT_EQ(fb.tag, 4u);
  EXPECT_LE(fb.flag, 3u);
  EXPECT_EQ(enc->decode(stored), next);
}

TEST(ReadSae, SaeNeverWorseThanReadByMoreThanFlagBits) {
  // SAE evaluates READ's granularity among its options; from identical
  // stored state a single write can lose at most the 2 granularity-flag
  // flips. Over a long mixed run (states evolve independently) the
  // accumulated totals must respect that bound too.
  const EncoderPtr sae = make_read_sae();
  const EncoderPtr read_only = make_read();
  Xoshiro256 rng{29};
  CacheLine logical = testutil::random_line(rng);
  StoredLine s1 = sae->make_stored(logical);
  StoredLine s2 = read_only->make_stored(logical);
  usize total_sae = 0;
  usize total_read = 0;
  const int iters = 300;
  for (int i = 0; i < iters; ++i) {
    logical = testutil::next_line(
        rng, logical, testutil::kAllWriteClasses[rng.next_below(6)]);
    total_sae += sae->encode(s1, logical).total();
    total_read += read_only->encode(s2, logical).total();
  }
  EXPECT_LE(total_sae, total_read + 2 * iters);
}

TEST(ReadSae, PaperModelReadBeatsFnwAtEqualBudgetOnDenseSparseWrites) {
  // The core READ claim (Section 3.1) holds under the paper's own
  // accounting: with one dirty word per write-back (the clean-word-rich
  // regime) and dense word updates, pooling the 32-bit budget over the
  // dirty word (granularity 2) beats the fixed 32-tag FNW (g = 16).
  // The *stateful* encoder does not reproduce this win — the clean-word
  // bookkeeping the paper omits consumes it (see
  // RandomSparseWritesAreReadsWorstCase and EXPERIMENTS.md).
  PaperModelReadSae model{{.tag_budget = 32,
                           .redundant_word_aware = true,
                           .granularity_levels = 1}};
  PaperModelLineState state;
  const EncoderPtr fnw16 = make_fnw(16);  // same 32-bit tag budget
  Xoshiro256 rng{31};
  CacheLine logical = testutil::random_line(rng);
  StoredLine s2 = fnw16->make_stored(logical);
  usize f1 = 0;
  usize f2 = 0;
  for (int i = 0; i < 500; ++i) {
    CacheLine next = logical;
    next.set_word(rng.next_below(kWordsPerLine), rng.next());
    f1 += model.write(state, logical, next).total();
    f2 += fnw16->encode(s2, next).total();
    logical = next;
  }
  EXPECT_LT(f1, f2);
}

TEST(ReadSae, RandomSparseWritesAreReadsWorstCase) {
  // Reproduction finding (DESIGN.md §5): on uniform-random sparse writes,
  // the clean-word bookkeeping the paper omits erodes READ's edge — the
  // correct implementation may trail FNW, but the dual normalize/re-tag
  // policy bounds the damage.
  const EncoderPtr read_enc = make_read();
  const EncoderPtr fnw16 = make_fnw(16);
  Xoshiro256 rng{131};
  CacheLine logical = testutil::random_line(rng);
  StoredLine s1 = read_enc->make_stored(logical);
  StoredLine s2 = fnw16->make_stored(logical);
  usize f1 = 0;
  usize f2 = 0;
  for (int i = 0; i < 500; ++i) {
    logical = testutil::next_line(rng, logical, testutil::WriteClass::kSparse);
    f1 += read_enc->encode(s1, logical).total();
    f2 += fnw16->encode(s2, logical).total();
  }
  EXPECT_LT(static_cast<double>(f1), 1.35 * static_cast<double>(f2));
}

TEST(ReadSae, DirtyFlagTracksModifiedWords) {
  const EncoderPtr enc = make_read_sae();
  CacheLine line;
  StoredLine stored = enc->make_stored(line);
  CacheLine next = line;
  next.set_word(0, 1);
  next.set_word(4, 2);
  next.set_word(7, 3);
  (void)enc->encode(stored, next);
  EXPECT_EQ(stored.meta.bits(32, 8), 0b10010001u);
}

TEST(ReadSae, LeftoverFlippedWordsStayDecodable) {
  // Word 0 is complement-written (stored flipped with tags), then the next
  // write leaves word 0 clean while dirtying word 1. The encoder either
  // normalizes word 0 to plaintext or re-tags it (keeps it in the dirty
  // flag); both must decode correctly and respect the plaintext invariant
  // for words outside the flag.
  const EncoderPtr enc = make_read_sae();
  CacheLine line;
  line.set_word(0, 0x00FF00FF00FF00FFull);
  StoredLine stored = enc->make_stored(line);

  CacheLine second = line;
  second.set_word(0, ~line.word(0));  // sequential flip of word 0
  (void)enc->encode(stored, second);
  ASSERT_EQ(enc->decode(stored), second);

  CacheLine third = second;
  third.set_word(1, 0xABCD);  // word 0 now clean
  (void)enc->encode(stored, third);
  ASSERT_EQ(enc->decode(stored), third);
  const u8 flag = static_cast<u8>(stored.meta.bits(32, 8));
  if ((flag & 1u) == 0) {
    // Normalized: plaintext on the cells.
    EXPECT_EQ(stored.data.word(0), third.word(0));
  } else {
    // Re-tagged: flipped form retained, tags must reconstruct it.
    EXPECT_EQ(enc->decode(stored).word(0), third.word(0));
  }
}

TEST(ReadSae, AllDirtyLineDegradesToPooledFnw) {
  // With all 8 words dirty, READ's granularity equals FNW at g = 16; total
  // flips should be in the same ballpark (tags reference old state).
  const EncoderPtr read_enc = make_read();
  const EncoderPtr fnw16 = make_fnw(16);
  Xoshiro256 rng{37};
  CacheLine logical = testutil::random_line(rng);
  StoredLine s1 = read_enc->make_stored(logical);
  StoredLine s2 = fnw16->make_stored(logical);
  usize f1 = 0;
  usize f2 = 0;
  for (int i = 0; i < 300; ++i) {
    logical = testutil::random_line(rng);
    f1 += read_enc->encode(s1, logical).total();
    f2 += fnw16->encode(s2, logical).total();
  }
  const double ratio = static_cast<double>(f1) / static_cast<double>(f2);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.15);  // READ pays the dirty flag on top
}

TEST(ReadSae, SaeOnlyHandlesComplementBetterThanFnw) {
  const EncoderPtr sae = make_sae_only();
  const EncoderPtr fnw16 = make_fnw(16);
  Xoshiro256 rng{41};
  const CacheLine line = testutil::random_line(rng);
  StoredLine s1 = sae->make_stored(line);
  StoredLine s2 = fnw16->make_stored(line);
  const usize f1 = sae->encode(s1, ~line).total();
  const usize f2 = fnw16->encode(s2, ~line).total();
  EXPECT_LT(f1, f2);
}

TEST(ReadSae, GranularityFlagStoredAndDecodable) {
  const EncoderPtr enc = make_read_sae();
  Xoshiro256 rng{43};
  CacheLine logical = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(logical);
  // Alternate adversarial writes; whatever granularity gets chosen, decode
  // must reconstruct.
  for (int i = 0; i < 200; ++i) {
    logical = (i % 3 == 0) ? ~logical
                           : testutil::next_line(rng, logical,
                                                 testutil::WriteClass::kSparse);
    (void)enc->encode(stored, logical);
    ASSERT_EQ(enc->decode(stored), logical) << "iter " << i;
  }
}

TEST(ReadSaeRotate, RoundTripsAllWriteClasses) {
  const EncoderPtr enc = make_read_sae_rotate();
  EXPECT_EQ(enc->name(), "READ+SAE-R");
  testutil::exercise_encoder(*enc, 909, 500);
}

TEST(ReadSaeRotate, MetaLayoutAddsCounter) {
  const EncoderPtr enc = make_read_sae_rotate();
  EXPECT_EQ(enc->meta_bits(), 47u);  // 32 tags + 8 dirty + 2 gran + 5 rot
  EXPECT_NEAR(enc->capacity_overhead(), 0.092, 0.001);
  // Rotation counter bits are flags, not tags.
  for (usize i = 42; i < 47; ++i) EXPECT_FALSE(enc->is_tag_bit(i));
}

TEST(ReadSaeRotate, CounterAdvancesGrayCoded) {
  const EncoderPtr enc = make_read_sae_rotate();
  CacheLine line;
  StoredLine stored = enc->make_stored(line);
  u64 prev_gray = stored.meta.bits(42, 5);
  for (int i = 0; i < 40; ++i) {
    line.set_word(0, static_cast<u64>(i) + 1);
    (void)enc->encode(stored, line);
    const u64 gray = stored.meta.bits(42, 5);
    // Gray property: exactly one counter cell flips per advance.
    EXPECT_EQ(popcount(prev_gray ^ gray), 1u) << "write " << i;
    prev_gray = gray;
    ASSERT_EQ(enc->decode(stored), line);
  }
}

TEST(ReadSaeRotate, SpreadsTagCellUsage) {
  // Writing the same word repeatedly with complement values pins READ+SAE
  // to the same few tag cells; rotation walks the whole budget.
  auto count_touched = [](const EncoderPtr& enc) {
    CacheLine line;
    StoredLine stored = enc->make_stored(line);
    std::array<u64, 32> flips{};
    u64 prev_tags = 0;
    for (int i = 0; i < 64; ++i) {
      line.set_word(0, ~line.word(0));  // sequential flip, M = 1
      (void)enc->encode(stored, line);
      const u64 tags = stored.meta.bits(0, 32);
      for (usize b = 0; b < 32; ++b) {
        flips[b] += ((prev_tags ^ tags) >> b) & 1;
      }
      prev_tags = tags;
    }
    usize touched = 0;
    for (u64 f : flips) touched += f > 0;
    return touched;
  };
  const usize plain = count_touched(make_read_sae());
  const usize rotated = count_touched(make_read_sae_rotate());
  EXPECT_GT(rotated, plain);
  EXPECT_GE(rotated, 16u);
}

TEST(ReadSaeRotate, RotationRejectsWideBudget) {
  AdaptiveConfig config;
  config.tag_budget = 64;
  config.rotate_tags = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ReadSae, SmallerTagBudgetStillCorrect) {
  const EncoderPtr enc = make_read_sae(8);
  testutil::exercise_encoder(*enc, 515, 400);
}

}  // namespace
}  // namespace nvmenc
