// Power-failure atomicity: the differential proof of the commit protocol.
//
// The central theorem of the crash-consistency layer: with atomic_writes
// on, a power cut at ANY program-pulse boundary recovers to the full old
// or the full new logical line image — never a hybrid. The proof is an
// exhaustive sweep: calibrate the total pulse count of a multi-write
// scenario, then re-run it once per possible cut point for every one of
// the paper's seven hardware schemes, recover, and check the decoded
// line against the version history. A companion test shows the protocol
// is necessary, not incidental: the same cut without it leaves a hybrid.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/schemes.hpp"
#include "fault/power_failure.hpp"
#include "fault/secded.hpp"
#include "nvm/controller.hpp"

namespace nvmenc {
namespace {

CacheLine random_line(Xoshiro256& rng) {
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, rng.next());
  return line;
}

/// The scenario under test: three successive write-backs of one line.
/// Returns the number of writes that completed before the power died.
usize run_writes(MemoryController& ctrl, u64 addr,
                 const std::vector<CacheLine>& versions, bool& torn) {
  usize completed = 0;
  torn = false;
  try {
    for (usize i = 1; i < versions.size(); ++i) {
      ctrl.write_line(addr, versions[i]);
      ++completed;
    }
  } catch (const PowerLossError&) {
    torn = true;
  }
  return completed;
}

/// Exhaustive cut-point sweep for one scheme; asserts old-or-new at every
/// cut and that both recovery directions are exercised.
void sweep_scheme(Scheme scheme, const ControllerConfig& config,
                  bool protect) {
  const u64 addr = 0x40;
  Xoshiro256 rng{0xC0FFEE ^ static_cast<u64>(scheme)};
  std::vector<CacheLine> versions;
  versions.emplace_back();  // v0: the pristine (all-zero) logical image
  for (int i = 0; i < 3; ++i) versions.push_back(random_line(rng));

  auto make_device = [scheme, protect](PowerFailurePlan* plan) {
    NvmDeviceConfig dc;
    dc.power = plan;
    return NvmDevice{dc, [scheme, protect](u64) {
                       StoredLine s =
                           make_encoder(scheme)->make_stored(CacheLine{});
                       if (protect) s.meta = secded_protect(s.meta);
                       return s;
                     }};
  };

  // Calibration: an unarmed plan counts the scenario's total pulses.
  PowerFailurePlan calibration;
  {
    NvmDevice device = make_device(&calibration);
    FaultContext fault{device};
    MemoryController ctrl{config, make_encoder(scheme), device, nullptr,
                          &fault};
    bool torn = false;
    ASSERT_EQ(run_writes(ctrl, addr, versions, torn), versions.size() - 1);
    ASSERT_FALSE(torn);
  }
  const u64 total_pulses = calibration.pulses_seen;
  ASSERT_GT(total_pulses, 0u) << scheme_name(scheme);

  u64 forwards = 0;
  u64 backs = 0;
  for (u64 cut = 0; cut <= total_pulses; ++cut) {
    PowerFailurePlan plan;
    plan.cut_after_pulses = cut;
    NvmDevice device = make_device(&plan);
    FaultContext fault{device};
    usize completed = 0;
    bool torn = false;
    {
      MemoryController ctrl{config, make_encoder(scheme), device, nullptr,
                            &fault};
      completed = run_writes(ctrl, addr, versions, torn);
    }
    ASSERT_EQ(torn, cut < total_pulses) << scheme_name(scheme) << " cut "
                                        << cut;

    // "Reboot": a fresh controller over the same array + fault state runs
    // the recovery scan, then the line is demand-read as usual.
    MemoryController rebooted{config, make_encoder(scheme), device, nullptr,
                              &fault};
    rebooted.recover();
    const CacheLine recovered = rebooted.read_line(addr);
    const CacheLine& old_image = versions[completed];
    const CacheLine& new_image =
        versions[std::min(completed + 1, versions.size() - 1)];
    const bool is_old = recovered == old_image;
    const bool is_new = recovered == new_image;
    ASSERT_TRUE(is_old || is_new)
        << scheme_name(scheme) << ": hybrid line after cut " << cut << "/"
        << total_pulses << " (" << completed << " writes completed)";
    const ResilienceStats& r = rebooted.stats().resilience;
    EXPECT_EQ(r.recovery_scans, 1u);
    if (r.rolled_forward > 0) {
      // A committed log always replays the FULL new image.
      EXPECT_TRUE(is_new) << scheme_name(scheme) << " cut " << cut;
      ++forwards;
    }
    backs += r.rolled_back;

    // Idempotence: recovering again changes nothing.
    MemoryController again{config, make_encoder(scheme), device, nullptr,
                           &fault};
    again.recover();
    EXPECT_EQ(again.read_line(addr), recovered)
        << scheme_name(scheme) << " cut " << cut;
  }
  // The sweep must exercise both recovery directions, or it proved less
  // than it claims.
  EXPECT_GT(forwards, 0u) << scheme_name(scheme);
  EXPECT_GT(backs, 0u) << scheme_name(scheme);
}

TEST(PowerFailure, OldOrNewForEverySchemeAtEveryCutPoint) {
  ControllerConfig config;
  config.verify.atomic_writes = true;
  for (const Scheme scheme : paper_schemes()) {
    sweep_scheme(scheme, config, /*protect=*/false);
  }
}

TEST(PowerFailure, OldOrNewHoldsUnderVerifyAndSecded) {
  // The protocol must also cover the resilient write path: verify reads,
  // SECDED check-cell refreshes and re-pulses all draw from the same
  // power budget.
  ControllerConfig config;
  config.verify.atomic_writes = true;
  config.verify.program_and_verify = true;
  config.verify.protect_meta = true;
  sweep_scheme(Scheme::kReadSae, config, /*protect=*/true);
}

TEST(PowerFailure, TornWriteWithoutProtocolLeavesHybrid) {
  // The control experiment: same device-level cut, no commit protocol.
  // Some cut point must leave a line that is neither old nor new —
  // otherwise the atomicity machinery would be redundant.
  const u64 addr = 0x40;
  Xoshiro256 rng{7};
  const CacheLine new_data = random_line(rng);

  // Calibrate the single plain write.
  PowerFailurePlan calibration;
  const Scheme scheme = Scheme::kDcw;
  auto initializer = [scheme](u64) {
    return make_encoder(scheme)->make_stored(CacheLine{});
  };
  {
    NvmDeviceConfig dc;
    dc.power = &calibration;
    NvmDevice device{dc, initializer};
    MemoryController ctrl{ControllerConfig{}, make_encoder(scheme), device};
    ctrl.write_line(addr, new_data);
  }
  ASSERT_GT(calibration.pulses_seen, 2u);

  bool hybrid_seen = false;
  for (u64 cut = 1; cut < calibration.pulses_seen; ++cut) {
    PowerFailurePlan plan;
    plan.cut_after_pulses = cut;
    NvmDeviceConfig dc;
    dc.power = &plan;
    NvmDevice device{dc, initializer};
    MemoryController ctrl{ControllerConfig{}, make_encoder(scheme), device};
    try {
      ctrl.write_line(addr, new_data);
    } catch (const PowerLossError& e) {
      EXPECT_EQ(e.line_addr(), addr);
      EXPECT_LT(e.pulses_applied(), calibration.pulses_seen);
    }
    const CacheLine decoded = make_encoder(scheme)->decode(device.load(addr));
    if (decoded != CacheLine{} && decoded != new_data) hybrid_seen = true;
  }
  EXPECT_TRUE(hybrid_seen);
}

TEST(PowerFailure, UnarmedPlanOnlyCounts) {
  PowerFailurePlan plan;
  EXPECT_FALSE(plan.armed());
  EXPECT_EQ(plan.grant(100), 100u);
  EXPECT_EQ(plan.pulses_seen, 100u);
  EXPECT_FALSE(plan.tripped);

  plan.cut_after_pulses = 150;
  EXPECT_TRUE(plan.armed());
  EXPECT_EQ(plan.grant(50), 50u);  // lands exactly on the budget: completes
  EXPECT_FALSE(plan.tripped);
  EXPECT_EQ(plan.grant(10), 0u);  // the next store gets nothing
  EXPECT_TRUE(plan.tripped);
  EXPECT_FALSE(plan.armed());
  EXPECT_EQ(plan.grant(10), 10u);  // recovery runs at full power
}

TEST(PowerFailure, RecoveryScrubsSingleMetaFlip) {
  // A disturbed metadata cell found by the post-crash scan is corrected
  // AND written back (scrubbed), so it cannot stack into a double error.
  const Scheme scheme = Scheme::kFnw;
  EncoderPtr probe = make_encoder(scheme);
  ASSERT_GT(probe->meta_bits(), 0u);
  NvmDevice device{NvmDeviceConfig{}, [scheme](u64) {
                     StoredLine s =
                         make_encoder(scheme)->make_stored(CacheLine{});
                     s.meta = secded_protect(s.meta);
                     return s;
                   }};
  ControllerConfig config;
  config.verify.program_and_verify = true;
  config.verify.protect_meta = true;
  FaultContext fault{device};
  Xoshiro256 rng{3};
  {
    MemoryController ctrl{config, make_encoder(scheme), device, nullptr,
                          &fault};
    ctrl.write_line(0x40, random_line(rng));
    ctrl.write_line(0x40, random_line(rng));
  }
  StoredLine tampered = device.load(0x40);
  tampered.meta.set_bit(0, !tampered.meta.bit(0));
  device.store(0x40, tampered, 1);

  MemoryController rebooted{config, make_encoder(scheme), device, nullptr,
                            &fault};
  rebooted.recover();
  EXPECT_EQ(rebooted.stats().resilience.meta_corrected, 1u);
  EXPECT_EQ(rebooted.stats().resilience.recovery_retired, 0u);

  // The scrub repaired the array: a second scan sees a clean line.
  MemoryController again{config, make_encoder(scheme), device, nullptr,
                         &fault};
  again.recover();
  EXPECT_EQ(again.stats().resilience.meta_corrected, 0u);
  EXPECT_GT(again.stats().resilience.recovered_clean, 0u);
}

TEST(PowerFailure, RecoveryEscalatesSecdedDoubleErrorToRetirement) {
  // PR 3's graceful-degradation promise under torn metadata: a SECDED
  // double error discovered during recovery with no committed log to
  // replay is counted and the line retired — never silently "corrected"
  // into plausible garbage.
  const Scheme scheme = Scheme::kFnw;
  NvmDevice device{NvmDeviceConfig{}, [scheme](u64) {
                     StoredLine s =
                         make_encoder(scheme)->make_stored(CacheLine{});
                     s.meta = secded_protect(s.meta);
                     return s;
                   }};
  ControllerConfig config;
  config.verify.program_and_verify = true;
  config.verify.protect_meta = true;
  FaultContext fault{device};
  Xoshiro256 rng{4};
  CacheLine last;
  {
    MemoryController ctrl{config, make_encoder(scheme), device, nullptr,
                          &fault};
    ctrl.write_line(0x40, random_line(rng));
    last = random_line(rng);
    ctrl.write_line(0x40, last);
  }
  // Two flips in one SECDED chunk: uncorrectable by construction.
  StoredLine tampered = device.load(0x40);
  tampered.meta.set_bit(1, !tampered.meta.bit(1));
  tampered.meta.set_bit(2, !tampered.meta.bit(2));
  device.store(0x40, tampered, 2);

  MemoryController rebooted{config, make_encoder(scheme), device, nullptr,
                            &fault};
  rebooted.recover();
  const ResilienceStats& r = rebooted.stats().resilience;
  EXPECT_GE(r.meta_uncorrectable, 1u);
  EXPECT_EQ(r.recovery_retired, 1u);
  EXPECT_EQ(r.line_retirements, 1u);
  EXPECT_EQ(fault.spares_used, 1u);
  EXPECT_EQ(fault.remap.count(0x40), 1u);  // the line now lives on a spare

  // The replay-phase combination: the retired line keeps serving (with
  // best-effort metadata) instead of wedging the run.
  MemoryController after{config, make_encoder(scheme), device, nullptr,
                         &fault};
  const CacheLine again = after.read_line(0x40);
  (void)again;  // decode of best-effort metadata: must not throw
  const CacheLine fresh = random_line(rng);
  after.write_line(0x40, fresh);
  EXPECT_EQ(after.read_line(0x40), fresh);
}

}  // namespace
}  // namespace nvmenc
