#include "encoding/afnw.hpp"

#include <gtest/gtest.h>

#include "compress/fpc.hpp"
#include "encoder_test_util.hpp"
#include "encoding/dcw.hpp"

namespace nvmenc {
namespace {

TEST(Afnw, MetaLayout) {
  AfnwEncoder enc;
  EXPECT_EQ(enc.meta_bits(), 56u);  // 8 x (3 pattern + 4 tag)
  // Pattern bits are flags, tag bits are tags, repeating every 7 bits.
  EXPECT_FALSE(enc.is_tag_bit(0));
  EXPECT_FALSE(enc.is_tag_bit(2));
  EXPECT_TRUE(enc.is_tag_bit(3));
  EXPECT_TRUE(enc.is_tag_bit(6));
  EXPECT_FALSE(enc.is_tag_bit(7));
  EXPECT_TRUE(enc.is_tag_bit(10));
}

TEST(Afnw, PristineDecode) {
  AfnwEncoder enc;
  Xoshiro256 rng{61};
  for (int i = 0; i < 50; ++i) {
    const CacheLine line = testutil::random_line(rng);
    EXPECT_EQ(enc.decode(enc.make_stored(line)), line);
  }
}

TEST(Afnw, PristineCompressibleDecode) {
  AfnwEncoder enc;
  CacheLine line;
  line.set_word(0, 0);
  line.set_word(1, 42);
  line.set_word(2, ~u64{0});
  line.set_word(3, 0x7777777777777777ull);
  EXPECT_EQ(enc.decode(enc.make_stored(line)), line);
}

TEST(Afnw, RoundTripsAllWriteClasses) {
  AfnwEncoder enc;
  testutil::exercise_encoder(enc, 616);
}

TEST(Afnw, SilentRewriteCostsNothing) {
  AfnwEncoder enc;
  Xoshiro256 rng{62};
  CacheLine line = testutil::random_line(rng);
  StoredLine stored = enc.make_stored(line);
  (void)enc.encode(stored, ~line);  // accumulate flip/tag state
  // Rewriting the identical line is free even with tags set.
  const CacheLine same = ~line;
  EXPECT_EQ(enc.encode(stored, same).total(), 0u);
}

TEST(Afnw, StableLengthUpdateTouchesOnlyThatPayload) {
  AfnwEncoder enc;
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, 100 + w);
  StoredLine stored = enc.make_stored(line);
  CacheLine next = line;
  next.set_word(3, 90);  // still an 8-bit sign-extended pattern
  ASSERT_EQ(fpc_compress_word(u64{103}).pattern,
            fpc_compress_word(u64{90}).pattern);
  const FlipBreakdown fb = enc.encode(stored, next);
  // Same pattern -> same offsets -> only word 3's 8-bit payload (and its
  // tags) can flip.
  EXPECT_LE(fb.data, 8u);
  EXPECT_EQ(fb.flag, 0u);
  EXPECT_EQ(enc.decode(stored), next);
}

TEST(Afnw, LengthChangeShiftsLaterPayloads) {
  // The re-alignment cost the paper's evaluation hinges on: growing word
  // 0's compressed length moves every later payload, costing flips on
  // words whose logical value never changed.
  AfnwEncoder enc;
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    line.set_word(w, 0x4242 + (w << 8));  // 16-bit payloads
  }
  StoredLine stored = enc.make_stored(line);
  CacheLine next = line;
  next.set_word(0, 0x123456789ull);  // 4 -> 64-bit... 16 -> 64-bit payload
  const FlipBreakdown fb = enc.encode(stored, next);
  DcwEncoder dcw;
  StoredLine plain = dcw.make_stored(line);
  const usize dcw_flips = dcw.encode(plain, next).total();
  // AFNW pays more than the logical change alone.
  EXPECT_GT(fb.total(), dcw_flips / 2);
  EXPECT_EQ(enc.decode(stored), next);
}

TEST(Afnw, PatternTransitionsAreAccountedAsFlagFlips) {
  AfnwEncoder enc;
  CacheLine a;  // word 0 pattern 0 (zero)
  StoredLine stored = enc.make_stored(a);
  CacheLine b;
  b.set_word(0, 0x123456789ABCDEF0ull);  // pattern 7 (raw)
  const FlipBreakdown fb = enc.encode(stored, b);
  EXPECT_GE(fb.flag, 1u);  // pattern 0 -> 7 flips all 3 prefix bits
  EXPECT_EQ(enc.decode(stored), b);
}

TEST(Afnw, IncompressibleWordsStillRoundTrip) {
  AfnwEncoder enc;
  Xoshiro256 rng{63};
  CacheLine logical;
  StoredLine stored = enc.make_stored(logical);
  for (int i = 0; i < 100; ++i) {
    for (usize w = 0; w < kWordsPerLine; ++w) {
      logical.set_word(w, rng.next() | (u64{1} << 62));
    }
    (void)enc.encode(stored, logical);
    ASSERT_EQ(enc.decode(stored), logical);
  }
}

TEST(Afnw, FullyIncompressibleLineUsesWholeLine) {
  // Eight 64-bit payloads pack to exactly 512 bits; round-trip must hold
  // at the capacity boundary.
  AfnwEncoder enc;
  Xoshiro256 rng{64};
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    line.set_word(w, rng.next() | (u64{1} << 62));
  }
  const StoredLine stored = enc.make_stored(line);
  EXPECT_EQ(enc.decode(stored), line);
}

}  // namespace
}  // namespace nvmenc
