// Randomized stress tests: arbitrary cache shapes against the flat
// reference model. Complements test_hierarchy.cpp's directed tests.
#include <gtest/gtest.h>
#include <unordered_map>

#include "cache/hierarchy.hpp"
#include "common/rng.hpp"

namespace nvmenc {
namespace {

class MapBackend final : public LineBackend {
 public:
  CacheLine read_line(u64 line_addr) override {
    const auto it = image.find(line_addr);
    return it != image.end() ? it->second : CacheLine{};
  }
  void write_line(u64 line_addr, const CacheLine& data) override {
    image[line_addr] = data;
  }
  std::unordered_map<u64, CacheLine> image;
};

struct Shape {
  std::vector<CacheConfig> levels;
  usize footprint_lines;
  const char* label;
};

std::vector<Shape> shapes() {
  return {
      {{{.name = "L1", .size_bytes = 2 * kLineBytes, .ways = 1}},
       64,
       "direct-mapped-single"},
      {{{.name = "L1", .size_bytes = 8 * kLineBytes, .ways = 8}},
       64,
       "fully-associative-single"},
      {{{.name = "L1", .size_bytes = 4 * kLineBytes, .ways = 2},
        {.name = "L2", .size_bytes = 8 * kLineBytes, .ways = 2}},
       96,
       "two-level-tiny"},
      {{{.name = "L1", .size_bytes = 4 * kLineBytes, .ways = 4},
        {.name = "L2", .size_bytes = 16 * kLineBytes, .ways = 4},
        {.name = "L3", .size_bytes = 64 * kLineBytes, .ways = 16}},
       256,
       "three-level"},
      {{{.name = "L1", .size_bytes = 2 * kLineBytes, .ways = 2},
        {.name = "L2", .size_bytes = 2 * kLineBytes, .ways = 2},
        {.name = "L3", .size_bytes = 4 * kLineBytes, .ways = 1},
        {.name = "L4", .size_bytes = 32 * kLineBytes, .ways = 8}},
       128,
       "four-level-degenerate"},
  };
}

class CacheStress : public ::testing::TestWithParam<usize> {};

TEST_P(CacheStress, MatchesFlatMemoryUnderRandomTraffic) {
  const Shape shape = shapes()[GetParam()];
  MapBackend backend;
  CacheHierarchy h{shape.levels, backend};
  std::unordered_map<u64, u64> reference;
  Xoshiro256 rng{9000 + GetParam()};
  for (int i = 0; i < 40000; ++i) {
    const u64 line = rng.next_below(shape.footprint_lines) * kLineBytes;
    const u64 addr = line + rng.next_below(kWordsPerLine) * 8;
    if (rng.next_bool(0.6)) {
      const u64 value = rng.next();
      h.access({addr, Op::kWrite, value});
      reference[addr] = value;
    } else {
      const auto it = reference.find(addr);
      const u64 want = it != reference.end() ? it->second : 0;
      ASSERT_EQ(h.access({addr, Op::kRead, 0}), want)
          << shape.label << " iter " << i;
    }
    // Occasionally flush mid-stream: everything must still line up.
    if (i % 15000 == 14999) {
      h.flush();
      for (const auto& [a, v] : reference) {
        const u64 l = a & ~u64{kLineBytes - 1};
        ASSERT_TRUE(backend.image.contains(l)) << shape.label;
        ASSERT_EQ(backend.image[l].word((a / 8) % kWordsPerLine), v)
            << shape.label;
      }
    }
  }
  // Capacity invariants hold at every level.
  for (usize level = 0; level < h.levels(); ++level) {
    ASSERT_LE(h.level(level).resident_lines(),
              h.level(level).config().lines());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CacheStress,
                         ::testing::Values<usize>(0, 1, 2, 3, 4),
                         [](const auto& param_info) {
                           std::string name =
                               shapes()[param_info.param].label;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CacheStress, HotSetStaysResident) {
  // A working set that fits L1 must stop generating backend traffic.
  MapBackend backend;
  CacheHierarchy h{{{.name = "L1",
                     .size_bytes = 8 * kLineBytes,
                     .ways = 8}},
                   backend};
  Xoshiro256 rng{77};
  for (int i = 0; i < 100; ++i) {
    h.access({rng.next_below(8) * kLineBytes, Op::kWrite, rng.next()});
  }
  const u64 misses_after_warm = h.level(0).stats().misses;
  for (int i = 0; i < 5000; ++i) {
    h.access({rng.next_below(8) * kLineBytes, Op::kWrite, rng.next()});
  }
  EXPECT_EQ(h.level(0).stats().misses, misses_after_warm);
}

}  // namespace
}  // namespace nvmenc
