// End-to-end pipeline tests: workload -> caches -> controller -> device.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace nvmenc {
namespace {

SimConfig small_config() {
  SimConfig c;
  c.caches = {
      {.name = "L1", .size_bytes = 4 * kLineBytes, .ways = 2},
      {.name = "L2", .size_bytes = 32 * kLineBytes, .ways = 4},
  };
  c.warmup_accesses = 1000;
  return c;
}

std::unique_ptr<SyntheticWorkload> small_workload(const std::string& name,
                                                  u64 seed) {
  WorkloadProfile p = profile_by_name(name);
  p.working_set_lines = 256;
  return std::make_unique<SyntheticWorkload>(p, seed);
}

TEST(Simulator, RunsAndCollectsStats) {
  Simulator sim{small_config(), small_workload("gcc", 1), Scheme::kReadSae};
  sim.run(20000);
  EXPECT_GT(sim.stats().writebacks, 100u);
  EXPECT_GT(sim.stats().flips.total(), 0u);
  EXPECT_GT(sim.stats().energy.total_pj(), 0.0);
}

TEST(Simulator, WarmupResetsStats) {
  Simulator sim{small_config(), small_workload("gcc", 2), Scheme::kDcw};
  sim.warmup();
  EXPECT_EQ(sim.stats().writebacks, 0u);
  sim.run(5000);
  EXPECT_GT(sim.stats().writebacks, 0u);
}

// The decisive integration property: after draining the caches, the NVM
// stored images must decode to exactly the workload's program-order memory
// image, for every scheme.
TEST(Simulator, NvmDecodesToProgramImageAfterDrain) {
  for (Scheme scheme :
       {Scheme::kDcw, Scheme::kFnw, Scheme::kAfnw, Scheme::kCoef,
        Scheme::kCafo, Scheme::kRead, Scheme::kReadSae, Scheme::kSaeOnly}) {
    Simulator sim{small_config(), small_workload("sjeng", 3), scheme};
    sim.run(30000);
    sim.drain();
    NvmDevice& device = sim.device();
    // Every touched line must decode to the value a flat memory would
    // hold: reconstruct the flat memory by replaying the identical
    // workload stream (same profile, same seed).
    auto replay_wl = small_workload("sjeng", 3);
    std::unordered_map<u64, CacheLine> image;
    for (int i = 0; i < 30000; ++i) {
      const MemAccess a = replay_wl->next();
      if (a.op != Op::kWrite) continue;
      auto it = image.find(a.line_addr());
      if (it == image.end()) {
        it = image.emplace(a.line_addr(), replay_wl->initial_line(a.line_addr()))
                 .first;
      }
      it->second.set_word(a.word_index(), a.value);
    }
    usize checked = 0;
    for (const auto& [addr, want] : image) {
      const CacheLine got = sim.encoder().decode(device.load(addr));
      ASSERT_EQ(got, want)
          << scheme_name(scheme) << " line " << std::hex << addr;
      ++checked;
    }
    EXPECT_GT(checked, 50u) << scheme_name(scheme);
  }
}

TEST(Simulator, SchemesSeeIdenticalWritebackCounts) {
  u64 baseline = 0;
  for (Scheme scheme : {Scheme::kDcw, Scheme::kReadSae}) {
    Simulator sim{small_config(), small_workload("milc", 4), scheme};
    sim.run(20000);
    if (baseline == 0) {
      baseline = sim.stats().writebacks;
    } else {
      EXPECT_EQ(sim.stats().writebacks, baseline);
    }
  }
}

TEST(Simulator, ReadSaeFlipsBelowDcw) {
  u64 dcw_flips = 0;
  u64 rs_flips = 0;
  {
    Simulator sim{small_config(), small_workload("gcc", 5), Scheme::kDcw};
    sim.run(30000);
    dcw_flips = sim.stats().flips.total();
  }
  {
    Simulator sim{small_config(), small_workload("gcc", 5), Scheme::kReadSae};
    sim.run(30000);
    rs_flips = sim.stats().flips.total();
  }
  EXPECT_LT(rs_flips, dcw_flips);
}

TEST(Simulator, RequiresWorkload) {
  EXPECT_THROW(Simulator(small_config(), nullptr, Scheme::kDcw),
               std::invalid_argument);
}

}  // namespace
}  // namespace nvmenc
