#include "nvm/mlc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

TEST(Mlc, GrayMappingRoundTrips) {
  for (u8 bits = 0; bits < 4; ++bits) {
    EXPECT_EQ(mlc_bits_of_state(mlc_state_of_bits(bits)), bits);
  }
  // Gray property: adjacent states differ in exactly one logical bit.
  for (u8 s = 0; s < 3; ++s) {
    EXPECT_EQ(popcount(static_cast<u64>(mlc_bits_of_state(s) ^
                                        mlc_bits_of_state(s + 1))),
              1u);
  }
}

TEST(Mlc, IdenticalLinesCostNothing) {
  Xoshiro256 rng{1};
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, rng.next());
  EXPECT_EQ(mlc_write_energy(line, line), 0.0);
  EXPECT_EQ(mlc_cell_changes(line, line), 0u);
}

TEST(Mlc, SingleBitFlipIsOneCellTransition) {
  CacheLine a;
  CacheLine b = a;
  b.set_bit(10, true);  // bit pair 5 of word 0: 00 -> 01? bit 10 is pair 5
  EXPECT_EQ(mlc_cell_changes(a, b), 1u);
  // 00 -> Gray state of the new pair; energy must be one transition.
  EXPECT_GT(mlc_write_energy(a, b), 0.0);
  MlcEnergyParams p;
  EXPECT_LE(mlc_write_energy(a, b), 19.2);
}

TEST(Mlc, BothBitsOfOnePairIsStillOneCell) {
  CacheLine a;
  CacheLine b = a;
  b.set_bit(0, true);
  b.set_bit(1, true);  // pair 0: 00 -> 11, one cell
  EXPECT_EQ(mlc_cell_changes(a, b), 1u);
}

TEST(Mlc, FullComplementTouchesEveryCell) {
  Xoshiro256 rng{2};
  CacheLine a;
  for (usize w = 0; w < kWordsPerLine; ++w) a.set_word(w, rng.next());
  const CacheLine b = ~a;
  EXPECT_EQ(mlc_cell_changes(a, b), 256u);  // 512 bits / 2 per cell
}

TEST(Mlc, EnergyMatchesManualTransitionSum) {
  // word 0: pair 0 goes 00 -> 10 (state 0 -> 3 under Gray), others idle.
  CacheLine a;
  CacheLine b = a;
  b.set_bit(1, true);  // bit pair value 0b10
  MlcEnergyParams p;
  EXPECT_DOUBLE_EQ(mlc_write_energy(a, b, p), p.transition_pj[0][3]);
  // And the reverse direction uses the opposite entry.
  EXPECT_DOUBLE_EQ(mlc_write_energy(b, a, p), p.transition_pj[3][0]);
}

TEST(Mlc, AsymmetricDirections) {
  MlcEnergyParams p;
  EXPECT_NE(p.transition_pj[0][3], p.transition_pj[3][0]);
  for (usize s = 0; s < 4; ++s) EXPECT_EQ(p.transition_pj[s][s], 0.0);
}

TEST(Mlc, ChangesBoundedByBitFlips) {
  // Each changed cell implies at least one changed bit, so cell changes
  // never exceed bit flips (and can be as low as half).
  Xoshiro256 rng{3};
  for (int i = 0; i < 100; ++i) {
    CacheLine a;
    CacheLine b;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      a.set_word(w, rng.next());
      b.set_word(w, rng.next_bool(0.5) ? a.word(w) : rng.next());
    }
    const usize flips = a.hamming(b);
    const usize cells = mlc_cell_changes(a, b);
    EXPECT_LE(cells, flips);
    EXPECT_GE(2 * cells, flips);
  }
}

}  // namespace
}  // namespace nvmenc
