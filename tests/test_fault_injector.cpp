#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace nvmenc {
namespace {

StoredLine zero_image(usize meta_bits = 16) {
  StoredLine s;
  s.meta = BitBuf{meta_bits};
  return s;
}

StoredLine random_image(Xoshiro256& rng, usize meta_bits = 16) {
  StoredLine s;
  for (usize w = 0; w < kWordsPerLine; ++w) s.data.set_word(w, rng.next());
  s.meta = BitBuf{meta_bits};
  for (usize i = 0; i < meta_bits; ++i) s.meta.set_bit(i, rng.next_bool(0.5));
  return s;
}

TEST(FaultInjector, RejectsRatesOutsideUnitInterval) {
  EXPECT_THROW(FaultInjector{FaultInjectorConfig{.write_fail_rate = -0.1}},
               std::invalid_argument);
  EXPECT_THROW(FaultInjector{FaultInjectorConfig{.write_fail_rate = 1.5}},
               std::invalid_argument);
  EXPECT_THROW(FaultInjector{FaultInjectorConfig{.read_disturb_rate = 2.0}},
               std::invalid_argument);
  EXPECT_THROW(FaultInjector{FaultInjectorConfig{.stuck_rate = -1.0}},
               std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector{FaultInjectorConfig{.write_fail_rate = 1.0}});
}

TEST(FaultInjector, ZeroRatesAreInert) {
  FaultInjector injector{FaultInjectorConfig{}};
  EXPECT_FALSE(injector.enabled());
  Xoshiro256 rng{1};
  const StoredLine prev = zero_image();
  const StoredLine next = random_image(rng);
  const WriteFaults faults = injector.on_store(0x40, 0, prev, next);
  EXPECT_TRUE(faults.failed_cells.empty());
  EXPECT_TRUE(faults.new_stuck_cells.empty());
  EXPECT_FALSE(injector.on_load(0x40, 0, kLineBits).has_value());
  EXPECT_EQ(injector.transient_faults(), 0u);
  EXPECT_EQ(injector.read_disturbs(), 0u);
}

TEST(FaultInjector, CertainFailureHitsEveryProgrammedCell) {
  FaultInjector injector{FaultInjectorConfig{.write_fail_rate = 1.0}};
  StoredLine prev = zero_image(4);
  StoredLine next = zero_image(4);
  next.data.set_bit(3, true);
  next.data.set_bit(200, true);
  next.meta.set_bit(1, true);
  const WriteFaults faults = injector.on_store(0x40, 0, prev, next);
  // Only the three changed cells receive pulses; all of them fail. Meta
  // cell 1 reports as combined index kLineBits + 1.
  EXPECT_EQ(faults.failed_cells,
            (std::vector<usize>{3, 200, kLineBits + 1}));
  EXPECT_EQ(injector.transient_faults(), 3u);
}

TEST(FaultInjector, DrawsAreKeyedByLineAndSequenceNotCallOrder) {
  // The acceptance property behind --jobs determinism: the faults of
  // (line, seq) must not depend on what other lines did in between.
  const FaultInjectorConfig config{
      .write_fail_rate = 0.3, .read_disturb_rate = 0.2, .stuck_rate = 0.1,
      .seed = 99};
  Xoshiro256 rng{2};
  const StoredLine prev = zero_image();
  const StoredLine next = random_image(rng);
  const StoredLine other = random_image(rng);

  FaultInjector lone{config};
  const WriteFaults a0 = lone.on_store(0xA0, 0, prev, next);
  const WriteFaults a1 = lone.on_store(0xA0, 1, next, prev);
  const auto ld = lone.on_load(0xA0, 0, kLineBits + 16);

  FaultInjector busy{config};
  (void)busy.on_store(0xB0, 0, prev, other);
  (void)busy.on_load(0xC0, 7, kLineBits);
  const WriteFaults b0 = busy.on_store(0xA0, 0, prev, next);
  (void)busy.on_store(0xB0, 1, other, prev);
  const WriteFaults b1 = busy.on_store(0xA0, 1, next, prev);
  const auto ld2 = busy.on_load(0xA0, 0, kLineBits + 16);

  EXPECT_EQ(a0.failed_cells, b0.failed_cells);
  EXPECT_EQ(a0.new_stuck_cells, b0.new_stuck_cells);
  EXPECT_EQ(a1.failed_cells, b1.failed_cells);
  EXPECT_EQ(a1.new_stuck_cells, b1.new_stuck_cells);
  EXPECT_EQ(ld, ld2);
}

TEST(FaultInjector, DistinctSeedsDecorrelate) {
  Xoshiro256 rng{3};
  const StoredLine prev = zero_image();
  const StoredLine next = random_image(rng);
  FaultInjectorConfig config{.write_fail_rate = 0.5};
  config.seed = 1;
  FaultInjector first{config};
  config.seed = 2;
  FaultInjector second{config};
  const WriteFaults a = first.on_store(0x40, 0, prev, next);
  const WriteFaults b = second.on_store(0x40, 0, prev, next);
  EXPECT_NE(a.failed_cells, b.failed_cells);
}

TEST(FaultInjector, StuckCellsComeFromDataRegionOnly) {
  FaultInjector injector{FaultInjectorConfig{.stuck_rate = 1.0}};
  StoredLine prev = zero_image(4);
  StoredLine next = zero_image(4);
  next.data.set_bit(10, true);
  next.meta.set_bit(2, true);
  const WriteFaults faults = injector.on_store(0x40, 0, prev, next);
  // Every programmed data cell sticks; metadata cells never do (hard
  // faults in the metadata region would be invisible to SAFER).
  EXPECT_EQ(faults.new_stuck_cells, std::vector<usize>{10});
  EXPECT_EQ(injector.hard_faults(), 1u);
}

TEST(FaultInjector, ReadDisturbRateObserved) {
  FaultInjector injector{FaultInjectorConfig{.read_disturb_rate = 0.25}};
  usize disturbed = 0;
  const usize trials = 4000;
  for (usize i = 0; i < trials; ++i) {
    const auto cell = injector.on_load(0x40, i, kLineBits);
    if (cell.has_value()) {
      ++disturbed;
      EXPECT_LT(*cell, kLineBits);
    }
  }
  EXPECT_NEAR(static_cast<double>(disturbed) / trials, 0.25, 0.03);
  EXPECT_EQ(injector.read_disturbs(), disturbed);
}

}  // namespace
}  // namespace nvmenc
