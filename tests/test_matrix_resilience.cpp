#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "runner/parallel_runner.hpp"

namespace nvmenc {
namespace {

ExperimentConfig small_config(usize jobs) {
  ExperimentConfig c;
  c.collector.caches = {
      {.name = "L1", .size_bytes = 4 * kLineBytes, .ways = 2},
      {.name = "L2", .size_bytes = 32 * kLineBytes, .ways = 4},
  };
  c.collector.warmup_accesses = 2000;
  c.collector.measured_accesses = 12000;
  c.jobs = jobs;
  return c;
}

WorkloadProfile small_profile(const char* name) {
  WorkloadProfile p = profile_by_name(name);
  p.working_set_lines = 256;
  return p;
}

void expect_cell_identical(const ReplayResult& a, const ReplayResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.stats.writebacks, b.stats.writebacks);
  EXPECT_EQ(a.stats.flips.data, b.stats.flips.data);
  EXPECT_EQ(a.stats.flips.tag, b.stats.flips.tag);
  EXPECT_EQ(a.stats.flips.flag, b.stats.flips.flag);
  EXPECT_EQ(a.stats.flips.sets, b.stats.flips.sets);
  EXPECT_EQ(a.stats.flips.resets, b.stats.flips.resets);
  EXPECT_DOUBLE_EQ(a.stats.energy.read_pj, b.stats.energy.read_pj);
  EXPECT_DOUBLE_EQ(a.stats.energy.write_pj, b.stats.energy.write_pj);
  EXPECT_EQ(a.device_flips, b.device_flips);
  const ResilienceStats& ra = a.stats.resilience;
  const ResilienceStats& rb = b.stats.resilience;
  EXPECT_EQ(ra.verified_writes, rb.verified_writes);
  EXPECT_EQ(ra.write_retries, rb.write_retries);
  EXPECT_EQ(ra.retry_exhaustions, rb.retry_exhaustions);
  EXPECT_EQ(ra.safer_remaps, rb.safer_remaps);
  EXPECT_EQ(ra.line_retirements, rb.line_retirements);
  EXPECT_EQ(ra.sdc_detected, rb.sdc_detected);
  EXPECT_EQ(ra.meta_corrected, rb.meta_corrected);
  EXPECT_EQ(ra.check_flips, rb.check_flips);
}

TEST(MatrixResilience, PoisonedBenchmarkFailsAloneAndIsReported) {
  // The crash-proof property: one cell's exception must not sink the
  // matrix. The "__throw__" profile detonates in the collect phase.
  const std::vector<WorkloadProfile> profiles{small_profile("gcc"),
                                              profile_by_name("__throw__")};
  const std::vector<Scheme> schemes{Scheme::kDcw, Scheme::kFnw};
  std::ostringstream progress;
  const ExperimentMatrix m =
      run_experiment(profiles, schemes, small_config(2), &progress);

  EXPECT_EQ(m.failed_cells(), 2u);
  EXPECT_EQ(m.total_cells(), 4u);
  EXPECT_TRUE(m.cell_ok(0, 0));
  EXPECT_TRUE(m.cell_ok(0, 1));
  EXPECT_FALSE(m.cell_ok(1, 0));
  EXPECT_FALSE(m.cell_ok(1, 1));
  EXPECT_GT(m.at(0, 0).stats.writebacks, 0u);  // healthy row completed

  const ReplayResult* failure = m.first_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_EQ(failure->benchmark, "__throw__");
  EXPECT_EQ(failure->error->phase, "collect");
  EXPECT_NE(failure->error->message.find("poisoned"), std::string::npos);

  // Satellite: the runner summary line surfaces the first cell failure.
  const std::string text = progress.str();
  EXPECT_NE(text.find("2 failed"), std::string::npos);
  EXPECT_NE(text.find("collect: "), std::string::npos);
  EXPECT_NE(text.find("poisoned"), std::string::npos);

  // Normalized tables degrade to "n/a" rows instead of throwing.
  const TextTable table = m.normalized_table(metric_total_flips(),
                                             Scheme::kDcw);
  std::ostringstream rendered;
  table.print(rendered);
  EXPECT_NE(rendered.str().find("n/a"), std::string::npos);
  EXPECT_FALSE(std::isnan(m.average_ratio(Scheme::kFnw, Scheme::kDcw,
                                          metric_total_flips())));
}

TEST(MatrixResilience, ReplayPhaseExceptionIsRecordedPerCell) {
  // retry_limit=99 fails controller validation inside replay — but only
  // for device-backed schemes; the paper-model cell (no device) survives.
  const std::vector<WorkloadProfile> profiles{small_profile("gcc")};
  const std::vector<Scheme> schemes{Scheme::kDcw, Scheme::kReadSaePaper};
  ExperimentConfig cfg = small_config(1);
  cfg.fault.inject.write_fail_rate = 1e-4;
  cfg.fault.retry_limit = 99;
  const ExperimentMatrix m = run_experiment(profiles, schemes, cfg);

  EXPECT_EQ(m.failed_cells(), 1u);
  EXPECT_FALSE(m.cell_ok(0, 0));
  EXPECT_TRUE(m.cell_ok(0, 1));
  const ReplayResult* failure = m.first_failure();
  ASSERT_NE(failure, nullptr);
  EXPECT_EQ(failure->error->phase, "replay");
  EXPECT_NE(failure->error->message.find("retry_limit"), std::string::npos);
}

TEST(MatrixResilience, SeededFaultSweepIsBitIdenticalAcrossJobs) {
  // The second acceptance property: a fault-injected matrix, resilience
  // counters included, must not depend on the worker count.
  const std::vector<WorkloadProfile> profiles{
      small_profile("gcc"), small_profile("sjeng"), small_profile("milc")};
  const std::vector<Scheme> schemes{Scheme::kDcw, Scheme::kReadSae};

  auto fault_config = [](usize jobs) {
    ExperimentConfig c = small_config(jobs);
    c.fault.inject.write_fail_rate = 1e-3;
    c.fault.inject.read_disturb_rate = 1e-4;
    c.fault.inject.stuck_rate = 1e-4;
    c.fault.inject.seed = 1234;
    c.fault.retry_limit = 4;
    c.fault.protect_meta = true;
    return c;
  };
  const ExperimentMatrix serial =
      run_experiment(profiles, schemes, fault_config(1));
  const ExperimentMatrix parallel =
      run_experiment(profiles, schemes, fault_config(4));

  bool any_faults = false;
  for (usize b = 0; b < profiles.size(); ++b) {
    for (usize s = 0; s < schemes.size(); ++s) {
      ASSERT_TRUE(serial.cell_ok(b, s));
      expect_cell_identical(serial.at(b, s), parallel.at(b, s));
      const ResilienceStats& r = serial.at(b, s).stats.resilience;
      if (r.write_retries > 0) any_faults = true;
      EXPECT_EQ(r.verified_writes, serial.at(b, s).stats.writebacks);
    }
  }
  EXPECT_TRUE(any_faults);  // the sweep actually exercised the fault path
}

TEST(MatrixResilience, PerCellFaultStreamsAreDecorrelated) {
  // Two cells of the same scheme must draw different fault streams (the
  // per-cell salt), visible as different retry counts with high rates.
  const std::vector<WorkloadProfile> profiles{small_profile("gcc"),
                                              small_profile("sjeng")};
  ExperimentConfig cfg = small_config(1);
  cfg.fault.inject.write_fail_rate = 0.05;
  const ExperimentMatrix m = run_experiment(profiles, {Scheme::kDcw}, cfg);
  EXPECT_NE(m.at(0, 0).stats.resilience.write_retries,
            m.at(1, 0).stats.resilience.write_retries);
}

}  // namespace
}  // namespace nvmenc
