// Zero-allocation guarantee of the replay hot path.
//
// This binary (and only this binary) replaces the global operator new to
// feed the counting hook in common/alloc_hook.hpp. The test warms a
// MemorySystem past its queues' high-water marks, arms the counter, and
// then pushes tens of thousands more accesses through the
// submit -> arbitrate -> complete path: a single steady-state heap
// allocation fails the test. This is the enforcement half of the
// ChannelShard container design (RingBuffer, FlatSetU64, reserved
// vectors and completion heap).
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "common/alloc_hook.hpp"
#include "memsys/memory_system.hpp"
#include "trace/synthetic.hpp"

// Counting replacements: every allocation in this process funnels through
// alloc_hook_record (a no-op unless armed).
void* operator new(std::size_t size) {
  nvmenc::alloc_hook_record(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nvmenc {
namespace {

MemSysConfig hot_config() {
  MemSysConfig mem;
  mem.org.channels = 2;
  mem.org.encode_latency_ns = 3.47;
  return mem;
}

/// A pre-generated access stream: the real replay decodes records out of
/// an mmap'd trace, so the armed window must not include workload
/// generation (which allocates internally and is not the path under
/// test).
std::vector<MemAccess> make_stream(u64 seed, usize n) {
  SyntheticWorkload workload{profile_by_name("gcc"), seed};
  std::vector<MemAccess> out;
  out.reserve(n);
  for (usize i = 0; i < n; ++i) out.push_back(workload.next());
  return out;
}

/// Open-loop pump mirroring replay_impl's per-access work.
void pump(MemorySystem& sys, const std::vector<MemAccess>& stream,
          u64& index, u64 count, double inter_arrival_ns) {
  for (u64 i = 0; i < count; ++i, ++index) {
    const double now = static_cast<double>(index) * inter_arrival_ns;
    while (sys.step_until(now)) {
    }
    const MemAccess& a = stream[index % stream.size()];
    (void)sys.submit(a.line_addr(),
                     a.op == Op::kRead ? ReqKind::kRead : ReqKind::kWrite,
                     now);
  }
}

TEST(AllocHotPathTest, HookCountsOnlyWhileArmed) {
  // Call the replaceable operator directly: `delete new int` is legal for
  // the optimizer to elide, a direct ::operator new call is not.
  alloc_hook_arm(false);
  const u64 before = alloc_hook_count();
  ::operator delete(::operator new(32));
  EXPECT_EQ(alloc_hook_count(), before);
  alloc_hook_arm(true);
  ::operator delete(::operator new(32));
  alloc_hook_arm(false);
  EXPECT_EQ(alloc_hook_count(), before + 1);
  EXPECT_GE(alloc_hook_bytes(), 32u);
}

TEST(AllocHotPathTest, SteadyStateReplayNeverAllocates) {
  // Sub-saturation offered load (25 ns spacing vs ~100 ns reads over two
  // channels) so queues oscillate instead of growing without bound; the
  // containers reach their high-water marks during warmup.
  constexpr double kInterArrivalNs = 25.0;
  MemorySystem sys{hot_config()};
  const std::vector<MemAccess> stream = make_stream(99, 16'384);
  u64 index = 0;
  pump(sys, stream, index, 8'000, kInterArrivalNs);

  alloc_hook_arm(true);
  const u64 before = alloc_hook_count();
  pump(sys, stream, index, 40'000, kInterArrivalNs);
  const u64 after = alloc_hook_count();
  alloc_hook_arm(false);
  EXPECT_EQ(after - before, 0u)
      << "the replay hot path heap-allocated in steady state";

  // The run did real work: both kinds of traffic flowed.
  const MemSysStats s = sys.stats();
  EXPECT_GT(s.reads, 0u);
  EXPECT_GT(s.writes, 0u);
  (void)sys.drain_all();
}

TEST(AllocHotPathTest, SaturatedReplayStopsAllocatingOnceWarm) {
  // Past saturation the parked queue and completion heap keep growing for
  // a while; after a long warmup they too reach a high-water mark under
  // the open loop's bounded in-flight window... which open-loop replay
  // does NOT bound — so warm with the same access budget we measure, and
  // allow zero NEW allocations only at matched load. 12 ns spacing sits
  // near the knee: queues fill, drains cycle, parks happen, yet depth is
  // bounded, which is exactly the regime the gate benchmark replays.
  constexpr double kInterArrivalNs = 12.0;
  MemorySystem sys{hot_config()};
  const std::vector<MemAccess> stream = make_stream(7, 16'384);
  u64 index = 0;
  pump(sys, stream, index, 60'000, kInterArrivalNs);

  alloc_hook_arm(true);
  const u64 before = alloc_hook_count();
  pump(sys, stream, index, 60'000, kInterArrivalNs);
  const u64 after = alloc_hook_count();
  alloc_hook_arm(false);
  EXPECT_EQ(after - before, 0u)
      << "the near-saturation hot path heap-allocated after warmup";
  (void)sys.drain_all();
}

}  // namespace
}  // namespace nvmenc
