// The memory-system RAS layer (DESIGN.md §12): keyed fault draws, the
// program-and-verify -> SAFER -> retirement escalation, scrub-on-read,
// graceful channel degradation, and the acceptance scenario — killing one
// channel mid-replay while survivors absorb the remapped traffic, with
// serial and sharded engines bit-identical throughout.
//
// The fuzz case is fixed-seed and short for tier-1 ctest; CI's long mode
// raises the budget via NVMENC_FUZZ_WRITES (see .github/workflows/ci.yml).
#include "memsys/ras.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memsys/report.hpp"
#include "memsys/trace_replay.hpp"
#include "trace/synthetic.hpp"

namespace nvmenc {
namespace {

u64 fuzz_writes() {
  if (const char* env = std::getenv("NVMENC_FUZZ_WRITES")) {
    const u64 n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 300;  // tier-1 budget; the CI fuzz job runs 20000
}

RasConfig base_config() {
  RasConfig cfg;
  cfg.inject.seed = 99;
  return cfg;
}

// ---------------------------------------------------------------------------
// Keyed draws

TEST(FaultDomainTest, DrawsAreKeyedByLineNotByCallOrder) {
  // The sharded engines interleave per-channel work arbitrarily; fault
  // streams must depend on (line, seq), never on which line came first.
  RasConfig cfg = base_config();
  cfg.inject.write_fail_rate = 0.5;
  cfg.inject.read_disturb_rate = 0.5;
  FaultDomain fwd{cfg, 0};
  FaultDomain rev{cfg, 0};
  std::vector<u64> lines;
  for (u64 l = 0; l < 64; ++l) lines.push_back(l * 17 + 3);

  std::vector<FaultDomain::WriteOutcome> a, b;
  for (const u64 l : lines) a.push_back(fwd.on_array_write(l, 1.0));
  for (usize i = lines.size(); i-- > 0;) {
    b.push_back(rev.on_array_write(lines[i], 1.0));
  }
  for (usize i = 0; i < lines.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[lines.size() - 1 - i];
    EXPECT_EQ(x.retries, y.retries) << "line " << lines[i];
    EXPECT_EQ(x.exhausted, y.exhausted) << "line " << lines[i];
  }
  EXPECT_EQ(fwd.stats(), rev.stats());
}

TEST(FaultDomainTest, ChannelsDrawIndependentStreams) {
  RasConfig cfg = base_config();
  cfg.inject.write_fail_rate = 0.5;
  FaultDomain c0{cfg, 0};
  FaultDomain c1{cfg, 1};
  bool differ = false;
  for (u64 l = 0; l < 128 && !differ; ++l) {
    differ = c0.on_array_write(l, 1.0).retries !=
             c1.on_array_write(l, 1.0).retries;
  }
  EXPECT_TRUE(differ) << "channel salt did not separate the draw streams";
}

// ---------------------------------------------------------------------------
// Escalation and retirement

TEST(FaultDomainTest, EscalationWalksSaferThenRetireThenSpare) {
  RasConfig cfg = base_config();
  cfg.inject.write_fail_rate = 1.0;  // every pulse fails
  cfg.retry_limit = 2;
  cfg.safer_remap_limit = 2;
  cfg.spare_lines = 8;
  FaultDomain d{cfg, 0};

  const auto w1 = d.on_array_write(42, 1.0);
  EXPECT_TRUE(w1.exhausted);
  EXPECT_TRUE(w1.remapped);  // SAFER re-partition #1
  const auto w2 = d.on_array_write(42, 2.0);
  EXPECT_TRUE(w2.remapped);  // SAFER re-partition #2
  const auto w3 = d.on_array_write(42, 3.0);
  EXPECT_TRUE(w3.retired);   // SAFER budget gone: spare pool
  const auto w4 = d.on_array_write(42, 4.0);
  EXPECT_TRUE(w4.spare);     // spares are pristine media

  EXPECT_EQ(d.stats().safer_remaps, 2u);
  EXPECT_EQ(d.stats().retired_lines, 1u);
  EXPECT_EQ(d.stats().spare_writes, 1u);
  EXPECT_EQ(d.stats().spares_left, cfg.spare_lines - 1);
}

TEST(FaultDomainTest, RetirementIsIdempotentAcrossDemandAndScrub) {
  // The same line dies twice in one epoch — a scrub UE and then a demand
  // write escalation — and must consume exactly one spare.
  RasConfig cfg = base_config();
  cfg.inject.read_disturb_rate = 1.0;  // every read disturbs
  cfg.inject.write_fail_rate = 1.0;
  cfg.retry_limit = 1;
  cfg.safer_remap_limit = 0;  // writes escalate straight to retirement
  cfg.spare_lines = 4;
  cfg.degrade_ue_threshold = 100;
  FaultDomain d{cfg, 0};

  EXPECT_TRUE(d.on_demand_read(7, 1.0).disturbed);       // disturbs: 1
  const auto scrub = d.on_scrub_read(7, 2.0);            // disturbs: 2
  EXPECT_TRUE(scrub.uncorrectable);                      // -> retired
  EXPECT_EQ(d.stats().retired_lines, 1u);
  EXPECT_EQ(d.stats().spares_left, 3u);

  const auto w = d.on_array_write(7, 3.0);  // would have retired again
  EXPECT_TRUE(w.spare);
  EXPECT_FALSE(w.retired);
  EXPECT_EQ(d.stats().retired_lines, 1u) << "second retirement not idempotent";
  EXPECT_EQ(d.stats().spares_left, 3u) << "same line consumed two spares";

  // Retired lines read cleanly from the spare pool.
  const auto r = d.on_demand_read(7, 4.0);
  EXPECT_FALSE(r.disturbed);
  EXPECT_FALSE(r.uncorrectable);
}

TEST(FaultDomainTest, ScrubCorrectionResetsTheDisturbCounter) {
  RasConfig cfg = base_config();
  cfg.inject.read_disturb_rate = 0.6;
  cfg.degrade_ue_threshold = 1000;
  cfg.spare_lines = 1000;
  FaultDomain d{cfg, 0};
  // Find a line whose first demand read disturbs and whose scrub read does
  // not (fixed seed: the search is deterministic).
  bool exercised = false;
  for (u64 line = 0; line < 200 && !exercised; ++line) {
    if (!d.on_demand_read(line, 1.0).disturbed) continue;
    const auto scrub = d.on_scrub_read(line, 2.0);
    if (!scrub.corrected) continue;
    // Counter reset: the next disturb is a fresh single-bit error, fully
    // correctable — without the scrub it would have been the second hit.
    for (u64 i = 0; i < 32; ++i) {
      const auto r = d.on_demand_read(line, 3.0 + static_cast<double>(i));
      if (r.disturbed) {
        EXPECT_FALSE(r.uncorrectable)
            << "scrub correction did not reset the SECDED budget";
        exercised = true;
        break;
      }
    }
  }
  EXPECT_TRUE(exercised);
  EXPECT_GT(d.stats().scrub_corrections, 0u);
}

// ---------------------------------------------------------------------------
// Degradation

TEST(FaultDomainTest, SpareExhaustionTripsDegraded) {
  RasConfig cfg = base_config();
  cfg.inject.read_disturb_rate = 1.0;
  cfg.spare_lines = 2;
  cfg.degrade_ue_threshold = 1000;
  FaultDomain d{cfg, 0};
  for (u64 line : {u64{10}, u64{20}}) {
    (void)d.on_demand_read(line, 1.0);
    (void)d.on_demand_read(line, 2.0);  // second disturb -> UE -> retire
  }
  EXPECT_TRUE(d.degraded());
  EXPECT_EQ(d.stats().spares_left, 0u);
  bool logged = false;
  for (const RasEvent& e : d.events()) {
    if (e.kind == RasEventKind::kDegradeSpares) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(FaultDomainTest, UncorrectableThresholdTripsDegraded) {
  RasConfig cfg = base_config();
  cfg.inject.read_disturb_rate = 1.0;
  cfg.spare_lines = 1000;
  cfg.degrade_ue_threshold = 2;
  FaultDomain d{cfg, 0};
  for (u64 line : {u64{10}, u64{20}}) {
    (void)d.on_demand_read(line, 1.0);
    (void)d.on_demand_read(line, 2.0);
  }
  EXPECT_TRUE(d.degraded());
  bool logged = false;
  for (const RasEvent& e : d.events()) {
    if (e.kind == RasEventKind::kDegradeUes) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(FaultDomainTest, ScriptedKillTripsAtTheDeadlineOnly) {
  RasConfig cfg = base_config();
  cfg.kill_channel = 3;
  cfg.kill_at_ns = 100.0;
  FaultDomain victim{cfg, 3};
  FaultDomain bystander{cfg, 2};
  victim.poll(99.9);
  EXPECT_FALSE(victim.degraded());
  victim.poll(100.0);
  EXPECT_TRUE(victim.degraded());
  bystander.poll(1e9);
  EXPECT_FALSE(bystander.degraded());
}

TEST(FaultDomainTest, EventLogCapsWithDropCount) {
  RasConfig cfg = base_config();
  cfg.inject.read_disturb_rate = 1.0;
  cfg.spare_lines = 1000;
  cfg.degrade_ue_threshold = 10'000;
  FaultDomain d{cfg, 0};
  for (u64 line = 0; line < 40; ++line) {  // 2 events per line (UE + retire)
    (void)d.on_demand_read(line, 1.0);
    (void)d.on_demand_read(line, 2.0);
  }
  EXPECT_EQ(d.events().size(), 32u);
  EXPECT_EQ(d.events_dropped(), 48u);
}

// ---------------------------------------------------------------------------
// Degradation routing

TEST(RasRemapTest, RemapsOntoSurvivorsPreservingRowOffset) {
  MemOrg org;
  org.channels = 4;
  std::vector<u8> degraded{0, 1, 0, 0};
  Xoshiro256 rng{5};
  usize moved = 0;
  for (int i = 0; i < 2'000; ++i) {
    const u64 addr = pin_line_to_channel(org, rng.next() >> 12, 1);
    const u64 routed = ras_remap_line(org, addr, degraded);
    ASSERT_NE(channel_of_line(org, routed), 1u);
    ASSERT_EQ(routed % org.row_bytes, addr % org.row_bytes);
    ASSERT_EQ(ras_remap_line(org, addr, degraded), routed);  // stateless
    if (routed != addr) ++moved;
  }
  EXPECT_EQ(moved, 2'000u);
}

TEST(RasRemapTest, NoSurvivorsServesInPlace) {
  MemOrg org;
  org.channels = 2;
  const std::vector<u8> degraded{1, 1};
  EXPECT_EQ(ras_remap_line(org, 12345, degraded), 12345u);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: kill one channel mid-replay

std::vector<MemAccess> make_stream(u64 seed, usize n) {
  SyntheticWorkload workload{profile_by_name("gcc"), seed};
  std::vector<MemAccess> accesses;
  accesses.reserve(n);
  for (usize i = 0; i < n; ++i) accesses.push_back(workload.next());
  return accesses;
}

std::string render_ras(const RasReport& ras) {
  std::ostringstream out;
  ras_table(ras).print(out);
  ras_events_table(ras).print(out);
  return out.str();
}

TEST(RasReplayTest, KillOneChannelMidReplayCompletesOnSurvivors) {
  const std::vector<MemAccess> stream = make_stream(11, 6'000);
  TraceReplayConfig replay;
  replay.epoch_accesses = 500;
  MemSysConfig mem;
  mem.org.channels = 4;
  mem.org.encode_latency_ns = 3.47;
  mem.ras.kill_channel = 1;
  mem.ras.kill_at_ns = 20'000.0;  // a third of the way into the replay

  const TraceReplayResult serial = replay_trace(stream, replay, mem);
  // No crash, every access served, the victim reported degraded, and the
  // survivors absorbed remapped traffic.
  EXPECT_EQ(serial.accesses, stream.size());
  ASSERT_EQ(serial.ras.channels.size(), 4u);
  EXPECT_EQ(serial.ras.channels[1].degraded, 1u);
  EXPECT_DOUBLE_EQ(serial.ras.channels[1].degraded_at_ns, 20'000.0);
  u64 absorbed = 0;
  for (usize c : {usize{0}, usize{2}, usize{3}}) {
    EXPECT_EQ(serial.ras.channels[c].degraded, 0u);
    absorbed += serial.ras.channels[c].remapped_in;
  }
  EXPECT_GT(absorbed, 0u);

  for (usize jobs : {usize{1}, usize{2}, usize{4}}) {
    const TraceReplayResult sharded =
        replay_trace_sharded(stream, replay, mem, jobs);
    EXPECT_EQ(serial, sharded) << "jobs=" << jobs;
    EXPECT_EQ(render_ras(serial.ras), render_ras(sharded.ras))
        << "jobs=" << jobs;
  }
}

// ---------------------------------------------------------------------------
// Fuzz: random fault configurations, serial vs sharded

TEST(RasFuzzTest, RandomFaultConfigsStayJobsInvariant) {
  const u64 budget = fuzz_writes();
  const usize rounds = static_cast<usize>(budget / 300);
  const usize accesses = 2'000;
  Xoshiro256 rng{0xFA57'FA57ull};
  for (usize round = 0; round < rounds; ++round) {
    const std::vector<MemAccess> stream =
        make_stream(1000 + round, accesses);
    TraceReplayConfig replay;
    replay.epoch_accesses = 250 + rng.next_below(750);
    MemSysConfig mem;
    mem.org.channels = 2 + 2 * rng.next_below(2);  // 2 or 4
    mem.org.encode_latency_ns = 3.47;
    mem.ras.inject.seed = rng.next();
    mem.ras.inject.write_fail_rate = 0.05 * rng.next_double();
    mem.ras.inject.read_disturb_rate = 0.05 * rng.next_double();
    mem.ras.inject.stuck_rate = 0.01 * rng.next_double();
    mem.ras.retry_limit = 1 + static_cast<usize>(rng.next_below(3));
    mem.ras.spare_lines = 1 + static_cast<usize>(rng.next_below(16));
    mem.ras.degrade_ue_threshold =
        1 + static_cast<usize>(rng.next_below(8));
    if (rng.next_bool(0.5)) {
      mem.ras.scrub_interval_ns = 500.0 + 5'000.0 * rng.next_double();
    }
    if (rng.next_bool(0.3)) {
      mem.ras.kill_channel = static_cast<int>(
          rng.next_below(mem.org.channels));
      mem.ras.kill_at_ns = 10'000.0 * rng.next_double();
    }
    const TraceReplayResult serial = replay_trace(stream, replay, mem);
    for (usize jobs : {usize{2}, usize{4}}) {
      const TraceReplayResult sharded =
          replay_trace_sharded(stream, replay, mem, jobs);
      ASSERT_EQ(serial, sharded)
          << "round " << round << " jobs " << jobs << " seed "
          << mem.ras.inject.seed;
    }
  }
}

}  // namespace
}  // namespace nvmenc
