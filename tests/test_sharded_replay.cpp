// Channel-sharded parallel replay vs the serial engine: the tentpole
// determinism contract. replay_trace_sharded promises results — every
// counter, every histogram bucket, every float — bit-identical to
// replay_trace, for every --jobs value and every epoch length, plus
// byte-identical rendered tables (the output the user actually sees).
#include "memsys/trace_replay.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "memsys/report.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

namespace nvmenc {
namespace {

std::string temp_path(const std::string& name) {
  const std::string unique = name + "." + std::to_string(::getpid());
  return (std::filesystem::temp_directory_path() / unique).string();
}

std::vector<MemAccess> make_stream(u64 seed, usize n) {
  SyntheticWorkload workload{profile_by_name("gcc"), seed};
  std::vector<MemAccess> accesses;
  accesses.reserve(n);
  for (usize i = 0; i < n; ++i) accesses.push_back(workload.next());
  return accesses;
}

std::string render(const TraceReplayConfig& replay,
                   const TraceReplayResult& r) {
  std::ostringstream out;
  replay_table("trace", 3.47, replay, r).print(out);
  return out.str();
}

class ShardedReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stream_ = make_stream(7, 6000);
    bin_path_ = temp_path("nvmenc_sharded_replay.bin");
    write_trace(bin_path_, stream_);
    mem_.org.channels = 4;
    mem_.org.encode_latency_ns = 3.47;
  }
  void TearDown() override { std::remove(bin_path_.c_str()); }

  std::vector<MemAccess> stream_;
  std::string bin_path_;
  MemSysConfig mem_;
};

TEST_F(ShardedReplayTest, MatchesSerialEngineAtEveryJobsCount) {
  const MappedTrace trace{bin_path_};
  TraceReplayConfig replay;
  replay.epoch_accesses = 1000;  // several barriers over 6000 accesses
  const TraceReplayResult serial = replay_trace(trace, replay, mem_);
  for (usize jobs : {usize{1}, usize{2}, usize{4}}) {
    const TraceReplayResult sharded =
        replay_trace_sharded(trace, replay, mem_, jobs);
    EXPECT_EQ(serial, sharded) << "jobs=" << jobs;
    // Byte-identical rendered tables: the user-visible contract.
    EXPECT_EQ(render(replay, serial), render(replay, sharded))
        << "jobs=" << jobs;
  }
}

TEST_F(ShardedReplayTest, EpochLengthNeverChangesTheResult) {
  // Shards share nothing, so the barrier spacing is pure pacing: 64-access
  // epochs and one giant epoch must agree bit for bit.
  const MappedTrace trace{bin_path_};
  TraceReplayConfig replay;
  replay.epoch_accesses = 64;
  const TraceReplayResult fine = replay_trace_sharded(trace, replay, mem_, 4);
  replay.epoch_accesses = 1'000'000;
  const TraceReplayResult coarse =
      replay_trace_sharded(trace, replay, mem_, 4);
  EXPECT_EQ(fine, coarse);
}

TEST_F(ShardedReplayTest, SpanAndMappedSourcesAgree) {
  const MappedTrace trace{bin_path_};
  const TraceReplayConfig replay;
  const TraceReplayResult from_map =
      replay_trace_sharded(trace, replay, mem_, 2);
  const TraceReplayResult from_span =
      replay_trace_sharded(stream_, replay, mem_, 2);
  EXPECT_EQ(from_map, from_span);
}

TEST_F(ShardedReplayTest, SingleChannelDegeneratesToSerial) {
  const MappedTrace trace{bin_path_};
  const TraceReplayConfig replay;
  MemSysConfig one = mem_;
  one.org.channels = 1;
  EXPECT_EQ(replay_trace(trace, replay, one),
            replay_trace_sharded(trace, replay, one, 4));
}

TEST_F(ShardedReplayTest, MaxAccessesCapsBothEnginesAlike) {
  const MappedTrace trace{bin_path_};
  TraceReplayConfig replay;
  replay.max_accesses = 321;
  const TraceReplayResult serial = replay_trace(trace, replay, mem_);
  const TraceReplayResult sharded =
      replay_trace_sharded(trace, replay, mem_, 4);
  EXPECT_EQ(serial, sharded);
  EXPECT_EQ(sharded.accesses, 321u);
}

TEST_F(ShardedReplayTest, ChannelOfLineAgreesWithDecompose) {
  const MemoryTimingModel model{mem_.org};
  for (const MemAccess& a : stream_) {
    ASSERT_EQ(channel_of_line(mem_.org, a.line_addr()),
              model.decompose(a.line_addr()).channel);
  }
}

TEST_F(ShardedReplayTest, FaultInjectionStaysJobsInvariant) {
  // The RAS layer draws faults, scrubs in the background, and charges
  // recovery work to the banks — all of it keyed, none of it allowed to
  // break the bit-identical contract (tables included, RAS tables too).
  const MappedTrace trace{bin_path_};
  TraceReplayConfig replay;
  replay.epoch_accesses = 1000;
  mem_.ras.inject.write_fail_rate = 2e-3;
  mem_.ras.inject.read_disturb_rate = 1e-3;
  mem_.ras.inject.stuck_rate = 1e-4;
  mem_.ras.inject.seed = 9;
  mem_.ras.scrub_interval_ns = 2'000.0;
  const TraceReplayResult serial = replay_trace(trace, replay, mem_);
  EXPECT_TRUE(serial.ras.any());
  for (usize jobs : {usize{1}, usize{2}, usize{4}}) {
    const TraceReplayResult sharded =
        replay_trace_sharded(trace, replay, mem_, jobs);
    EXPECT_EQ(serial, sharded) << "jobs=" << jobs;
    EXPECT_EQ(render(replay, serial), render(replay, sharded))
        << "jobs=" << jobs;
    std::ostringstream a, b;
    ras_table(serial.ras).print(a);
    ras_table(sharded.ras).print(b);
    ras_events_table(serial.ras).print(a);
    ras_events_table(sharded.ras).print(b);
    EXPECT_EQ(a.str(), b.str()) << "jobs=" << jobs;
  }
}

TEST_F(ShardedReplayTest, RasOffLeavesTheReportEmpty) {
  const MappedTrace trace{bin_path_};
  const TraceReplayConfig replay;
  const TraceReplayResult r = replay_trace(trace, replay, mem_);
  EXPECT_FALSE(r.ras.any());
  EXPECT_TRUE(r.ras.events.empty());
}

TEST_F(ShardedReplayTest, ValidateRejectsZeroEpoch) {
  TraceReplayConfig replay;
  replay.epoch_accesses = 0;
  EXPECT_THROW(replay.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace nvmenc
