// Channel-sharded closed-loop load generation: jobs-independence, quota
// accounting, and the address-pinning property that makes sharding sound.
#include "memsys/loadgen.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "memsys/report.hpp"

namespace nvmenc {
namespace {

LoadGenConfig small_load() {
  LoadGenConfig load;
  load.users = 9;          // deliberately not a multiple of channels
  load.requests = 5'003;   // prime: exercises the quota remainder
  load.think_ns = 50.0;
  load.footprint_lines = 1u << 14;
  load.seed = 1234;
  return load;
}

MemSysConfig small_mem() {
  MemSysConfig mem;
  mem.org.channels = 4;
  mem.org.encode_latency_ns = 3.47;
  return mem;
}

std::string render(const LoadGenConfig& load, const LoadResult& r) {
  std::ostringstream out;
  load_table("READ+SAE", "paper", 3.47, load, r).print(out);
  return out.str();
}

TEST(ShardedLoadGenTest, JobsNeverChangeTheResult) {
  const LoadGenConfig load = small_load();
  const MemSysConfig mem = small_mem();
  const LoadResult one = run_load_sharded(load, mem, 1);
  for (usize jobs : {usize{2}, usize{4}}) {
    const LoadResult many = run_load_sharded(load, mem, jobs);
    EXPECT_EQ(one, many) << "jobs=" << jobs;
    EXPECT_EQ(render(load, one), render(load, many)) << "jobs=" << jobs;
  }
}

TEST(ShardedLoadGenTest, RepeatedRunsAreBitIdentical) {
  const LoadGenConfig load = small_load();
  const MemSysConfig mem = small_mem();
  EXPECT_EQ(run_load_sharded(load, mem, 4), run_load_sharded(load, mem, 4));
}

TEST(ShardedLoadGenTest, QuotasAccountForEveryRequest) {
  const LoadGenConfig load = small_load();
  const MemSysConfig mem = small_mem();
  const LoadResult r = run_load_sharded(load, mem, 4);
  // Every request issues exactly once: reads + accepted writes == budget.
  EXPECT_EQ(r.stats.reads + r.stats.writes, load.requests);
  EXPECT_GT(r.makespan_ns, 0.0);
  EXPECT_GT(r.stats.sustained_gbps(), 0.0);
}

TEST(ShardedLoadGenTest, SeedChangesTheRun) {
  LoadGenConfig load = small_load();
  const MemSysConfig mem = small_mem();
  const LoadResult a = run_load_sharded(load, mem, 2);
  load.seed = 4321;
  const LoadResult b = run_load_sharded(load, mem, 2);
  EXPECT_NE(a.stats.read_latency_stat.mean(),
            b.stats.read_latency_stat.mean());
}

TEST(ShardedLoadGenTest, PatternsDiffer) {
  LoadGenConfig load = small_load();
  const MemSysConfig mem = small_mem();
  load.pattern = LoadPattern::kUniform;
  const LoadResult uniform = run_load_sharded(load, mem, 2);
  load.pattern = LoadPattern::kZipfian;
  const LoadResult zipf = run_load_sharded(load, mem, 2);
  // Zipfian reuse must show up as forwarding/coalescing uniform lacks.
  EXPECT_GT(zipf.stats.forwarded_reads + zipf.stats.coalesced_writes,
            uniform.stats.forwarded_reads + uniform.stats.coalesced_writes);
}

TEST(ShardedLoadGenTest, PinningLandsOnTheHomeChannel) {
  MemOrg org;
  org.channels = 4;
  Xoshiro256 rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const u64 addr = rng.next() >> 12;
    for (usize c = 0; c < org.channels; ++c) {
      const u64 pinned = pin_line_to_channel(org, addr, c);
      ASSERT_EQ(channel_of_line(org, pinned), c);
      // Within-row offset (spatial locality) is preserved.
      ASSERT_EQ(pinned % org.row_bytes, addr % org.row_bytes);
    }
    // Pinning to the address's own channel is the identity.
    const usize home = channel_of_line(org, addr);
    ASSERT_EQ(pin_line_to_channel(org, addr, home), addr);
  }
}

TEST(ShardedLoadGenTest, FaultInjectionStaysJobsInvariant) {
  const LoadGenConfig load = small_load();
  MemSysConfig mem = small_mem();
  mem.ras.inject.write_fail_rate = 2e-3;
  mem.ras.inject.read_disturb_rate = 1e-3;
  mem.ras.inject.stuck_rate = 1e-4;
  mem.ras.inject.seed = 9;
  mem.ras.scrub_interval_ns = 2'000.0;
  const LoadResult one = run_load_sharded(load, mem, 1);
  EXPECT_TRUE(one.ras.any());
  for (usize jobs : {usize{2}, usize{4}}) {
    const LoadResult many = run_load_sharded(load, mem, jobs);
    EXPECT_EQ(one, many) << "jobs=" << jobs;
    EXPECT_EQ(render(load, one), render(load, many)) << "jobs=" << jobs;
    std::ostringstream a, b;
    ras_table(one.ras).print(a);
    ras_table(many.ras).print(b);
    EXPECT_EQ(a.str(), b.str()) << "jobs=" << jobs;
  }
}

TEST(ShardedLoadGenTest, SingleChannelSingleUserStillCompletes) {
  LoadGenConfig load = small_load();
  load.users = 1;
  load.requests = 500;
  MemSysConfig mem = small_mem();
  mem.org.channels = 1;
  const LoadResult r = run_load_sharded(load, mem, 4);
  EXPECT_EQ(r.stats.reads + r.stats.writes, load.requests);
}

}  // namespace
}  // namespace nvmenc
