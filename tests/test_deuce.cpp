#include "encoding/deuce.hpp"

#include <gtest/gtest.h>

#include "encoder_test_util.hpp"

namespace nvmenc {
namespace {

TEST(Deuce, MetaLayoutAndNames) {
  DeuceEncoder deuce;
  EXPECT_EQ(deuce.name(), "DEUCE");
  EXPECT_EQ(deuce.meta_bits(), 40u);
  EXPECT_FALSE(deuce.is_tag_bit(0));
  DeuceEncoder naive{true};
  EXPECT_EQ(naive.name(), "CTR-naive");
}

TEST(Deuce, StoredImageIsCiphertext) {
  DeuceEncoder deuce;
  Xoshiro256 rng{1};
  const CacheLine line = testutil::random_line(rng);
  const StoredLine stored = deuce.make_stored(line);
  // Ciphertext differs from plaintext (overwhelmingly).
  EXPECT_NE(stored.data, line);
  EXPECT_EQ(deuce.decode(stored), line);
}

TEST(Deuce, RoundTripsAllWriteClasses) {
  DeuceEncoder deuce;
  testutil::exercise_encoder(deuce, 2468, 400);
  DeuceEncoder naive{true};
  testutil::exercise_encoder(naive, 2469, 200);
}

TEST(Deuce, CleanWordsKeepTheirCiphertext) {
  DeuceEncoder deuce;
  Xoshiro256 rng{2};
  CacheLine line = testutil::random_line(rng);
  StoredLine stored = deuce.make_stored(line);
  CacheLine next = line;
  next.set_word(3, rng.next());
  const StoredLine before = stored;
  (void)deuce.encode(stored, next);
  usize changed_words = 0;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    changed_words += before.data.word(w) != stored.data.word(w);
  }
  EXPECT_EQ(changed_words, 1u);  // only the modified word re-keyed
  EXPECT_EQ(deuce.decode(stored), next);
}

TEST(Deuce, NaiveCtrRewritesEverything) {
  DeuceEncoder naive{true};
  Xoshiro256 rng{3};
  CacheLine line = testutil::random_line(rng);
  StoredLine stored = naive.make_stored(line);
  CacheLine next = line;
  next.set_word(0, rng.next());
  const FlipBreakdown fb = naive.encode(stored, next);
  // Full re-key randomizes ~half the line's cells.
  EXPECT_GT(fb.data, kLineBits / 4);
  EXPECT_EQ(naive.decode(stored), next);
}

TEST(Deuce, PartialWritesFlipLessThanNaive) {
  // Words modified within an epoch must follow the leading counter on
  // every subsequent write, so DEUCE's saving shrinks as the modified
  // bitmap fills; with one random word per write it still beats naive
  // CTR clearly, and with sparse low-reuse traffic (one write per epoch
  // reset) it crushes it.
  Xoshiro256 rng{4};
  DeuceEncoder deuce;
  DeuceEncoder naive{true};
  CacheLine line = testutil::random_line(rng);
  StoredLine s1 = deuce.make_stored(line);
  StoredLine s2 = naive.make_stored(line);
  usize f1 = 0;
  usize f2 = 0;
  for (int i = 0; i < 200; ++i) {
    line.set_word(rng.next_below(kWordsPerLine), rng.next());
    f1 += deuce.encode(s1, line).total();
    f2 += naive.encode(s2, line).total();
  }
  EXPECT_LT(static_cast<double>(f1), 0.85 * static_cast<double>(f2));

  // Fresh lines, one modified word each: the asymptotic 1/8 ratio.
  DeuceEncoder d2;
  DeuceEncoder n2{true};
  usize g1 = 0;
  usize g2 = 0;
  for (int i = 0; i < 100; ++i) {
    CacheLine base = testutil::random_line(rng);
    StoredLine t1 = d2.make_stored(base);
    StoredLine t2 = n2.make_stored(base);
    base.set_word(0, rng.next());
    g1 += d2.encode(t1, base).total();
    g2 += n2.encode(t2, base).total();
  }
  EXPECT_LT(static_cast<double>(g1), 0.25 * static_cast<double>(g2));
}

TEST(Deuce, EpochReencryptionResetsBitmap) {
  DeuceEncoder deuce;
  CacheLine line;
  StoredLine stored = deuce.make_stored(line);
  // Drive kEpoch writes; the epoch boundary must clear the bitmap and
  // still decode.
  for (usize i = 1; i <= DeuceEncoder::kEpoch; ++i) {
    line.set_word(0, i);
    (void)deuce.encode(stored, line);
    ASSERT_EQ(deuce.decode(stored), line) << "write " << i;
  }
  EXPECT_EQ(stored.meta.bits(32, 8), 0u);  // bitmap cleared at the epoch
  // Counters agree after the full re-encryption.
  EXPECT_EQ(stored.meta.bits(0, 16), stored.meta.bits(16, 16));
}

TEST(Deuce, SilentWritebackIsFree) {
  DeuceEncoder deuce;
  Xoshiro256 rng{5};
  const CacheLine line = testutil::random_line(rng);
  StoredLine stored = deuce.make_stored(line);
  EXPECT_EQ(deuce.encode(stored, line).total(), 0u);
}

TEST(Deuce, DifferentKeysGiveDifferentCiphertexts) {
  DeuceEncoder a{false, 1};
  DeuceEncoder b{false, 2};
  CacheLine line = CacheLine::filled(0x1234);
  EXPECT_NE(a.make_stored(line).data, b.make_stored(line).data);
  EXPECT_EQ(a.decode(a.make_stored(line)), line);
  EXPECT_EQ(b.decode(b.make_stored(line)), line);
}

}  // namespace
}  // namespace nvmenc
