// RingBuffer and FlatSetU64 back the zero-allocation hot path of the
// channel shards; these tests pin their FIFO/set semantics against the
// std containers they replaced, including the regrowth and backward-shift
// deletion corners that plain usage rarely exercises.
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/flat_set.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "gtest/gtest.h"

using namespace nvmenc;

TEST(RingBufferTest, FifoOrderAcrossWraparound) {
  RingBuffer<int> ring;
  ring.reserve(4);
  std::deque<int> model;
  // Interleave pushes and pops so head_ wraps several times at the
  // initial capacity before growth kicks in.
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      ring.push_back(next);
      model.push_back(next);
      ++next;
    }
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(ring.front(), model.front());
      ring.pop_front();
      model.pop_front();
    }
    ASSERT_EQ(ring.size(), model.size());
  }
  while (!model.empty()) {
    ASSERT_EQ(ring.front(), model.front());
    ring.pop_front();
    model.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, GrowthPreservesLogicalOrder) {
  RingBuffer<int> ring;
  ring.reserve(4);
  // Offset the head so regrowth must copy a wrapped layout.
  for (int i = 0; i < 3; ++i) ring.push_back(-1);
  for (int i = 0; i < 3; ++i) ring.pop_front();
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  ASSERT_EQ(ring.size(), 100u);
  for (usize i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i));
  }
}

TEST(RingBufferTest, EraseAtKeepsOrder) {
  for (usize victim = 0; victim < 7; ++victim) {
    RingBuffer<int> ring;
    ring.reserve(8);
    // Wrap the head first so erase_at crosses the physical seam.
    for (int i = 0; i < 5; ++i) ring.push_back(-1);
    for (int i = 0; i < 5; ++i) ring.pop_front();
    std::vector<int> model;
    for (int i = 0; i < 7; ++i) {
      ring.push_back(i);
      model.push_back(i);
    }
    ring.erase_at(victim);
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
    ASSERT_EQ(ring.size(), model.size());
    for (usize i = 0; i < model.size(); ++i) {
      EXPECT_EQ(ring[i], model[i]) << "victim " << victim << " slot " << i;
    }
  }
}

TEST(RingBufferTest, ReserveMakesSteadyStatePushPopAllocationFree) {
  RingBuffer<int> ring;
  ring.reserve(64);
  const usize cap = ring.capacity();
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 60; ++i) ring.push_back(i);
    for (int i = 0; i < 60; ++i) ring.pop_front();
  }
  EXPECT_EQ(ring.capacity(), cap);  // never regrew
}

TEST(FlatSetTest, MatchesUnorderedSetUnderRandomChurn) {
  constexpr usize kCapacity = 64;
  FlatSetU64 set{kCapacity};
  std::unordered_set<u64> model;
  Xoshiro256 rng{12345};
  // Small key universe forces frequent hits, repeats, and erases of
  // keys in shared collision clusters.
  for (int step = 0; step < 20'000; ++step) {
    const u64 key = rng.next_below(200);
    switch (rng.next_below(3)) {
      case 0: {
        if (model.size() >= kCapacity) break;  // respect fixed capacity
        const bool inserted = set.insert(key);
        EXPECT_EQ(inserted, model.insert(key).second);
        break;
      }
      case 1: {
        const bool erased = set.erase(key);
        EXPECT_EQ(erased, model.erase(key) > 0);
        break;
      }
      default:
        EXPECT_EQ(set.contains(key), model.contains(key));
        break;
    }
    ASSERT_EQ(set.size(), model.size());
  }
  for (u64 key = 0; key < 200; ++key) {
    EXPECT_EQ(set.contains(key), model.contains(key)) << "key " << key;
  }
}

TEST(FlatSetTest, BackwardShiftKeepsClusterMembersReachable) {
  // Build a deliberate collision cluster by filling to capacity, then
  // erase from the middle of the table and verify every survivor is
  // still found (the classic tombstone-free deletion pitfall).
  constexpr usize kCapacity = 32;
  FlatSetU64 set{kCapacity};
  std::vector<u64> keys;
  for (u64 k = 0; keys.size() < kCapacity; ++k) {
    if (set.insert(k * 7919)) keys.push_back(k * 7919);
  }
  for (usize i = 0; i < keys.size(); i += 3) {
    ASSERT_TRUE(set.erase(keys[i]));
  }
  for (usize i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(set.contains(keys[i]), i % 3 != 0) << "key " << keys[i];
  }
}

TEST(FlatSetTest, InsertBeyondCapacityThrows) {
  FlatSetU64 set{4};
  for (u64 k = 0; k < 4; ++k) ASSERT_TRUE(set.insert(k));
  EXPECT_FALSE(set.insert(2));  // duplicate: already present, no growth
  EXPECT_THROW(set.insert(99), std::invalid_argument);
}

TEST(FlatSetTest, ClearEmptiesWithoutShrinking) {
  FlatSetU64 set{16};
  for (u64 k = 0; k < 16; ++k) set.insert(k * 13);
  set.clear();
  EXPECT_TRUE(set.empty());
  for (u64 k = 0; k < 16; ++k) EXPECT_FALSE(set.contains(k * 13));
  for (u64 k = 0; k < 16; ++k) EXPECT_TRUE(set.insert(k * 17));
}
