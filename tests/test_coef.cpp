#include "encoding/coef.hpp"

#include <gtest/gtest.h>

#include "compress/fpc.hpp"
#include "encoder_test_util.hpp"

namespace nvmenc {
namespace {

CacheLine small_value_line(u64 base = 0) {
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, base + w);
  return line;
}

CacheLine incompressible_line(u64 seed) {
  Xoshiro256 rng{seed};
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) {
    line.set_word(w, rng.next() | (u64{1} << 62));
  }
  return line;
}

TEST(Coef, PerWordFlagOverhead) {
  CoefEncoder enc;
  EXPECT_EQ(enc.meta_bits(), 8u);
  EXPECT_FALSE(enc.is_tag_bit(0));
  // The paper quotes 0.2% (1 bit); the implementable per-word variant
  // spends 8 bits = 1.6% (DESIGN.md substitution note).
  EXPECT_NEAR(enc.capacity_overhead(), 0.0156, 0.001);
}

TEST(Coef, WordCompressiblePredicate) {
  EXPECT_TRUE(CoefEncoder::word_compressible(0));
  EXPECT_TRUE(CoefEncoder::word_compressible(42));
  EXPECT_TRUE(CoefEncoder::word_compressible(0x7FFFFFFF));     // 32-bit
  EXPECT_TRUE(CoefEncoder::word_compressible(~u64{0}));        // -1
  EXPECT_FALSE(CoefEncoder::word_compressible(0x123456789ABCDEF0ull));
}

TEST(Coef, RoundTripsAllWriteClasses) {
  CoefEncoder enc;
  testutil::exercise_encoder(enc, 717);
}

TEST(Coef, CompressibleWordsSetFlags) {
  CoefEncoder enc;
  StoredLine stored = enc.make_stored(CacheLine{});
  const CacheLine small = small_value_line(3);
  (void)enc.encode(stored, small);
  EXPECT_EQ(stored.meta.bits(0, 8), 0xFFu);
  EXPECT_EQ(enc.decode(stored), small);
}

TEST(Coef, IncompressibleWordsUseRawSlots) {
  CoefEncoder enc;
  const CacheLine raw = incompressible_line(71);
  StoredLine stored = enc.make_stored(CacheLine{});
  (void)enc.encode(stored, raw);
  EXPECT_EQ(stored.meta.bits(0, 8), 0u);
  EXPECT_EQ(stored.data, raw);  // raw slots hold plaintext
  EXPECT_EQ(enc.decode(stored), raw);
}

TEST(Coef, MixedLineRoundTrips) {
  CoefEncoder enc;
  Xoshiro256 rng{72};
  CacheLine line;
  line.set_word(0, 7);                                   // encoded
  line.set_word(1, rng.next() | (u64{1} << 62));         // raw
  line.set_word(2, ~u64{0});                             // encoded (-1)
  line.set_word(3, 0x123456789ABCDEF0ull);               // raw
  StoredLine stored = enc.make_stored(CacheLine{});
  (void)enc.encode(stored, line);
  EXPECT_EQ(stored.meta.bit(0), true);
  EXPECT_EQ(stored.meta.bit(1), false);
  EXPECT_EQ(stored.meta.bit(2), true);
  EXPECT_EQ(stored.meta.bit(3), false);
  EXPECT_EQ(enc.decode(stored), line);
}

TEST(Coef, MakeStoredHandlesBothModes) {
  CoefEncoder enc;
  const CacheLine small = small_value_line(9);
  EXPECT_EQ(enc.decode(enc.make_stored(small)), small);
  Xoshiro256 rng{73};
  const CacheLine raw = testutil::random_line(rng);
  EXPECT_EQ(enc.decode(enc.make_stored(raw)), raw);
}

TEST(Coef, ModeTransitionsRoundTrip) {
  CoefEncoder enc;
  Xoshiro256 rng{74};
  StoredLine stored = enc.make_stored(CacheLine{});
  for (int i = 0; i < 50; ++i) {
    CacheLine line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      line.set_word(w, i % 2 == 0 ? (rng.next() & 0xFF)
                                  : (rng.next() | (u64{1} << 62)));
    }
    (void)enc.encode(stored, line);
    ASSERT_EQ(enc.decode(stored), line) << "iteration " << i;
  }
}

TEST(Coef, SilentWritesAreFree) {
  CoefEncoder enc;
  const CacheLine small = small_value_line(42);
  StoredLine stored = enc.make_stored(CacheLine{});
  (void)enc.encode(stored, small);
  EXPECT_EQ(enc.encode(stored, small).total(), 0u);

  const CacheLine raw = incompressible_line(79);
  (void)enc.encode(stored, raw);
  EXPECT_EQ(enc.encode(stored, raw).total(), 0u);
}

TEST(Coef, WordSlotsAreIndependent) {
  // Fixed slots: updating one word leaves the other slots' cells alone.
  CoefEncoder enc;
  const CacheLine a = small_value_line(100);
  StoredLine stored = enc.make_stored(a);
  const StoredLine before = stored;
  CacheLine b = a;
  b.set_word(2, 77);
  (void)enc.encode(stored, b);
  for (usize w = 0; w < kWordsPerLine; ++w) {
    if (w == 2) continue;
    EXPECT_EQ(stored.data.word(w), before.data.word(w)) << "slot " << w;
  }
  EXPECT_EQ(enc.decode(stored), b);
}

TEST(Coef, EncodedWordsGetFineGrainedTags) {
  // A 16-bit payload with 4 tags is granularity 4: a dense change within
  // the payload costs at most ~half the payload plus tags.
  CoefEncoder enc;
  CacheLine a;
  a.set_word(0, 0xFFFF);
  StoredLine stored = enc.make_stored(a);
  CacheLine b = a;
  b.set_word(0, 0x0001);  // 15 logical bit flips in a 16-bit payload
  const FlipBreakdown fb = enc.encode(stored, b);
  EXPECT_LT(fb.total(), 15u);  // FNW inside the slot beats raw DCW
  EXPECT_EQ(enc.decode(stored), b);
}

TEST(Coef, TagFlipsAreReportedAsDataFlips) {
  // COEF's tags live in data cells; the tag component of the breakdown
  // must stay zero (the paper excludes COEF from Figure 11).
  CoefEncoder enc;
  Xoshiro256 rng{83};
  StoredLine stored = enc.make_stored(CacheLine{});
  for (int i = 0; i < 50; ++i) {
    CacheLine line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      line.set_word(w, rng.next() & 0xFFFF);
    }
    const FlipBreakdown fb = enc.encode(stored, line);
    EXPECT_EQ(fb.tag, 0u);
    EXPECT_LE(fb.flag, 8u);
  }
}

}  // namespace
}  // namespace nvmenc
