// Tests of the paper-accounting model (core/paper_model.hpp): the
// idealized READ/SAE evaluator used to regenerate the paper's figures.
#include "core/paper_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/schemes.hpp"

namespace nvmenc {
namespace {

PaperModelReadSae read_model() {
  return PaperModelReadSae{{.tag_budget = 32,
                            .redundant_word_aware = true,
                            .granularity_levels = 1}};
}

PaperModelReadSae read_sae_model() {
  return PaperModelReadSae{{.tag_budget = 32,
                            .redundant_word_aware = true,
                            .granularity_levels = 4}};
}

CacheLine random_line(Xoshiro256& rng) {
  CacheLine line;
  for (usize w = 0; w < kWordsPerLine; ++w) line.set_word(w, rng.next());
  return line;
}

TEST(PaperModel, SilentWriteIsFree) {
  const PaperModelReadSae model = read_sae_model();
  PaperModelLineState state;
  Xoshiro256 rng{1};
  const CacheLine line = random_line(rng);
  EXPECT_EQ(model.write(state, line, line).total(), 0u);
}

TEST(PaperModel, MetaBitsMatchEncoderLayout) {
  EXPECT_EQ(read_model().meta_bits(), 40u);
  EXPECT_EQ(read_sae_model().meta_bits(), 42u);
}

TEST(PaperModel, SetsPlusResetsEqualsTotal) {
  const PaperModelReadSae model = read_sae_model();
  PaperModelLineState state;
  Xoshiro256 rng{2};
  CacheLine line = random_line(rng);
  for (int i = 0; i < 200; ++i) {
    CacheLine next = line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if (rng.next_bool(0.4)) next.set_word(w, rng.next());
    }
    const FlipBreakdown fb = model.write(state, line, next);
    EXPECT_EQ(fb.sets + fb.resets, fb.total());
    line = next;
  }
}

TEST(PaperModel, SequentialFlipPicksCoarseGranularity) {
  // The Figure 5 case: a full complement costs only the coarse tags.
  const PaperModelReadSae model = read_sae_model();
  PaperModelLineState state;
  Xoshiro256 rng{3};
  const CacheLine line = random_line(rng);
  const FlipBreakdown fb = model.write(state, line, ~line);
  EXPECT_EQ(fb.data, 0u);
  EXPECT_LE(fb.tag, 4u);
  EXPECT_EQ(state.gran_flag, 3u);
}

TEST(PaperModel, ReadOnlyUsesFinestGranularityAlways) {
  const PaperModelReadSae model = read_model();
  PaperModelLineState state;
  Xoshiro256 rng{4};
  const CacheLine line = random_line(rng);
  const FlipBreakdown fb = model.write(state, line, ~line);
  // No SAE: 32 tags all flip, 0 data flips.
  EXPECT_EQ(fb.data, 0u);
  EXPECT_EQ(fb.tag, 32u);
  EXPECT_EQ(state.gran_flag, 0u);
}

TEST(PaperModel, NoNormalizationCharge) {
  // The defining idealization: a word that leaves the dirty set costs
  // nothing, even though its last encoding flipped it.
  const PaperModelReadSae model = read_model();
  PaperModelLineState state;
  CacheLine a;
  a.set_word(0, 0x00FF00FF00FF00FFull);
  CacheLine b = a;
  b.set_word(0, ~a.word(0));  // dense flip: tags get set
  (void)model.write(state, a, b);
  CacheLine c = b;
  c.set_word(1, 7);  // word 0 clean now
  const FlipBreakdown fb = model.write(state, b, c);
  // Only word 1's change and flag deltas are charged; no word-0 cost.
  EXPECT_LE(fb.data, 3u + 0u);
  EXPECT_LE(fb.total(), 3u + 32u + 8u);
}

TEST(PaperModel, DirtyFlagFlipsAccounted) {
  const PaperModelReadSae model = read_model();
  PaperModelLineState state;
  CacheLine a;
  CacheLine b = a;
  b.set_word(3, 1);
  const FlipBreakdown fb = model.write(state, a, b);
  EXPECT_GE(fb.flag, 1u);  // dirty flag bit 3 sets
  EXPECT_EQ(state.dirty_flag, 0b1000u);
}

TEST(PaperModel, SchemeRegistryIntegration) {
  EXPECT_TRUE(is_paper_model(Scheme::kReadPaper));
  EXPECT_TRUE(is_paper_model(Scheme::kReadSaePaper));
  EXPECT_FALSE(is_paper_model(Scheme::kRead));
  EXPECT_EQ(scheme_name(Scheme::kReadPaper), "READ*");
  EXPECT_EQ(scheme_name(Scheme::kReadSaePaper), "READ+SAE*");
  EXPECT_THROW((void)make_encoder(Scheme::kReadPaper), std::invalid_argument);
  EXPECT_TRUE(charges_encode_logic(Scheme::kReadSaePaper));
  EXPECT_EQ(figure_schemes().size(), 10u);
  EXPECT_TRUE(is_paper_model(Scheme::kAfnwPaper));
  EXPECT_EQ(scheme_name(Scheme::kAfnwPaper), "AFNW*");
}

TEST(PaperModelAfnw, CleanWordsAreFree) {
  const PaperModelAfnw model;
  PaperModelAfnwState state;
  Xoshiro256 rng{11};
  const CacheLine line = random_line(rng);
  EXPECT_EQ(model.write(state, line, line).total(), 0u);
}

TEST(PaperModelAfnw, MetaBitsMatchStatefulEncoder) {
  EXPECT_EQ(PaperModelAfnw{}.meta_bits(), 56u);
}

TEST(PaperModelAfnw, DirectionSplitConsistent) {
  const PaperModelAfnw model;
  PaperModelAfnwState state;
  Xoshiro256 rng{12};
  CacheLine line = random_line(rng);
  for (int i = 0; i < 200; ++i) {
    CacheLine next = line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if (rng.next_bool(0.5)) {
        next.set_word(w, rng.next_bool(0.5) ? rng.next()
                                            : (rng.next() & 0xFFFF));
      }
    }
    const FlipBreakdown fb = model.write(state, line, next);
    EXPECT_EQ(fb.sets + fb.resets, fb.total());
    line = next;
  }
}

TEST(PaperModelAfnw, CompressionAgainstPlainOldCostsLayoutChange) {
  // The defining behaviour: a small logical change whose compressed image
  // differs wildly from the plain old bits costs more than DCW would —
  // "compression results in more bit flips than DCW" (Section 4.2.1).
  const PaperModelAfnw model;
  PaperModelLineState unused;
  (void)unused;
  PaperModelAfnwState state;
  CacheLine old_line;
  old_line.set_word(0, 0xAAAAAAAAAAAAAAAAull);  // raw pattern, plain old
  CacheLine new_line = old_line;
  new_line.set_word(0, 0xAAAAAAAAAAAAAAABull);  // 2 logical bit changes
  const usize dcw = old_line.hamming(new_line);
  const FlipBreakdown fb = model.write(state, old_line, new_line);
  // Both are pattern-7 (raw payload), so here AFNW tracks DCW closely...
  EXPECT_LE(fb.data, dcw + 4);
  // ...but a word moving from raw to compressed rewrites its slot layout.
  CacheLine third = new_line;
  third.set_word(0, 5);  // pattern 1: 4-bit payload vs plain old slot
  const usize dcw2 = new_line.hamming(third);
  const FlipBreakdown fb2 = model.write(state, new_line, third);
  EXPECT_LT(fb2.total(), dcw2);  // the 4-bit payload is cheap to place...
  // ...yet the stateful encoder (compressed image persists) is cheaper
  // still on the *next* compressible update. The divergence between the
  // two accountings is covered by bench/ablation_read_sae table (c).
}

TEST(PaperModel, NeverWorseThanTagFreeDcwPlusMeta) {
  // Sanity bound: per write, the model's cost is at most DCW's data cost
  // plus every metadata bit flipping.
  const PaperModelReadSae model = read_sae_model();
  PaperModelLineState state;
  Xoshiro256 rng{5};
  CacheLine line = random_line(rng);
  for (int i = 0; i < 300; ++i) {
    CacheLine next = line;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if (rng.next_bool(0.5)) next.set_word(w, rng.next());
    }
    const usize dcw = line.hamming(next);
    const FlipBreakdown fb = model.write(state, line, next);
    EXPECT_LE(fb.total(), dcw + model.meta_bits());
    line = next;
  }
}

}  // namespace
}  // namespace nvmenc
