// ReferenceReadSae: the pre-kernel READ/SAE implementation, kept verbatim
// as a differential-testing oracle.
//
// This is the straightforward multi-pass encoder the repository shipped
// before the single-pass shared-cost kernel landed in core/read_sae.cpp:
// it re-gathers the dirty words and re-scans every bit once per
// (mask, granularity) candidate and runs a full decode() per encode. It is
// deliberately NOT built on the word-aligned fast paths or the unchecked
// BitBuf tier — only on the checked, bit-at-a-time primitives — so a bug
// in the optimized kernel cannot cancel out against the same bug here.
// The plan-selection order (candidate masks first-considered-wins,
// granularities evaluated finest to coarsest with strict '<') is part of
// the encoder's observable behaviour and must match ReadSaeEncoder
// exactly; test_read_sae_differential.cpp asserts bit-identical stored
// images, metadata and flip ledgers between the two.
#pragma once

#include "common/error.hpp"
#include "core/read_sae.hpp"
#include "encoding/encoder.hpp"

namespace nvmenc::testutil {

class ReferenceReadSae final : public Encoder {
 public:
  explicit ReferenceReadSae(AdaptiveConfig config, std::string name = {})
      : config_{config}, name_{std::move(name)} {
    config_.validate();
    if (name_.empty()) name_ = "ReferenceReadSae";
  }

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }

  [[nodiscard]] usize meta_bits() const noexcept override {
    return config_.tag_budget +
           (config_.redundant_word_aware ? kDirtyFlagBits : 0) +
           (config_.granularity_levels > 1 ? kGranularityFlagBits : 0) +
           (config_.rotate_tags ? kRotationBits : 0);
  }

  [[nodiscard]] bool is_tag_bit(usize i) const noexcept override {
    return i < config_.tag_budget;
  }

  [[nodiscard]] CacheLine decode(const StoredLine& stored) const override {
    const u8 dirty = stored_dirty_mask(stored);
    const usize dirty_words = popcount(dirty);
    CacheLine line = stored.data;
    if (dirty_words == 0) return line;

    const usize f = stored_gran_flag(stored);
    const usize tags = config_.tag_budget >> f;
    const usize total_bits = dirty_words * kWordBits;
    const usize seg_bits = total_bits / tags;

    const usize rotation = stored_rotation(stored);
    BitBuf bits = gather_words(stored.data, dirty);
    for (usize s = 0; s < tags; ++s) {
      if (stored.meta.bit(tag_cell(s, rotation))) {
        bits.flip_range(s * seg_bits, seg_bits);
      }
    }
    scatter_words(line, dirty, bits);
    return line;
  }

 protected:
  void encode_impl(StoredLine& stored,
                   const CacheLine& new_line) const override {
    const CacheLine old_logical = decode(stored);
    const u8 old_dirty = stored_dirty_mask(stored);
    const u8 changed = config_.redundant_word_aware
                           ? new_line.dirty_mask(old_logical)
                           : u8{0xff};

    if (popcount(changed) == 0) {
      // Silent write-back: the stored image already decodes to new_line.
      return;
    }

    const usize old_gran = stored_gran_flag(stored);
    const u8 old_flag = old_dirty;

    // Words leaving the tag-covered set whose stored form is not
    // plaintext: *normalize* them back to plaintext (paying the flips) or
    // *re-tag* them (see core/read_sae.hpp).
    u8 flipped_leftovers = 0;
    usize normalization_flips = 0;
    if (config_.redundant_word_aware) {
      const u8 leaving = old_flag & static_cast<u8>(~changed);
      for (usize w = 0; w < kWordsPerLine; ++w) {
        if (!((leaving >> w) & 1)) continue;
        const usize h = hamming(stored.data.word(w), old_logical.word(w));
        if (h != 0) {
          flipped_leftovers |= static_cast<u8>(1u << w);
          normalization_flips += h;
        }
      }
    }
    const u8 mask_retag = changed | flipped_leftovers;

    struct Plan {
      u8 mask = 0;
      usize f = 0;
      bool normalize = false;
      usize cost = ~usize{0};
    };
    Plan best;

    const usize rotation =
        config_.rotate_tags
            ? (stored_rotation(stored) + 1) % (usize{1} << kRotationBits)
            : 0;

    auto consider = [&](u8 mask, bool normalize, usize extra) {
      for (usize f = 0; f < config_.granularity_levels; ++f) {
        const usize tags = config_.tag_budget >> f;
        ensure((popcount(mask) * kWordBits) % tags == 0,
               "tag count must divide the covered bits");
        usize cost =
            segment_cost(stored, new_line, mask, tags, rotation) + extra;
        if (config_.granularity_levels > 1) {
          cost += hamming(static_cast<u64>(old_gran), static_cast<u64>(f));
        }
        if (config_.redundant_word_aware) {
          cost += hamming(static_cast<u64>(old_flag), static_cast<u64>(mask));
        }
        if (cost < best.cost) best = {mask, f, normalize, cost};
      }
    };

    consider(changed, /*normalize=*/true, normalization_flips);
    if (mask_retag != changed) {
      consider(mask_retag, /*normalize=*/false, 0);
    }

    if (best.normalize && flipped_leftovers != 0) {
      for (usize w = 0; w < kWordsPerLine; ++w) {
        if ((flipped_leftovers >> w) & 1) {
          stored.data.set_word(w, old_logical.word(w));
        }
      }
    }
    apply_plan(stored, new_line, best.mask, best.f, rotation);
  }

 private:
  static constexpr usize kRotationBits = 5;

  static BitBuf gather_words(const CacheLine& line, u8 mask) {
    BitBuf out;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if ((mask >> w) & 1) out.push_bits(line.word(w), kWordBits);
    }
    return out;
  }

  static void scatter_words(CacheLine& line, u8 mask, const BitBuf& bits) {
    usize pos = 0;
    for (usize w = 0; w < kWordsPerLine; ++w) {
      if ((mask >> w) & 1) {
        line.set_word(w, bits.bits(pos, kWordBits));
        pos += kWordBits;
      }
    }
  }

  [[nodiscard]] usize dirty_flag_offset() const noexcept {
    return config_.tag_budget;
  }
  [[nodiscard]] usize gran_flag_offset() const noexcept {
    return config_.tag_budget +
           (config_.redundant_word_aware ? kDirtyFlagBits : 0);
  }
  [[nodiscard]] usize rotation_offset() const noexcept {
    return gran_flag_offset() +
           (config_.granularity_levels > 1 ? kGranularityFlagBits : 0);
  }

  [[nodiscard]] u8 stored_dirty_mask(const StoredLine& stored) const {
    if (!config_.redundant_word_aware) return 0xff;
    return static_cast<u8>(
        stored.meta.bits(dirty_flag_offset(), kDirtyFlagBits));
  }

  [[nodiscard]] usize stored_gran_flag(const StoredLine& stored) const {
    if (config_.granularity_levels <= 1) return 0;
    return static_cast<usize>(
        stored.meta.bits(gran_flag_offset(), kGranularityFlagBits));
  }

  [[nodiscard]] usize stored_rotation(const StoredLine& stored) const {
    if (!config_.rotate_tags) return 0;
    u64 gray = stored.meta.bits(rotation_offset(), kRotationBits);
    u64 binary = 0;
    for (u64 g = gray; g != 0; g >>= 1) binary ^= g;
    return static_cast<usize>(binary);
  }

  [[nodiscard]] usize tag_cell(usize s, usize rotation) const noexcept {
    return (s + rotation) % config_.tag_budget;
  }

  [[nodiscard]] usize segment_cost(const StoredLine& stored,
                                   const CacheLine& new_line, u8 mask,
                                   usize tags, usize rotation) const {
    const BitBuf new_bits = gather_words(new_line, mask);
    const BitBuf old_cells = gather_words(stored.data, mask);
    const usize total_bits = popcount(mask) * kWordBits;
    const usize seg_bits = total_bits / tags;
    usize cost = 0;
    for (usize s = 0; s < tags; ++s) {
      const usize pos = s * seg_bits;
      const usize plain_h = old_cells.hamming_range(new_bits, pos, seg_bits);
      const bool old_tag = stored.meta.bit(tag_cell(s, rotation));
      const usize cost_plain = plain_h + (old_tag ? 1 : 0);
      const usize cost_flip = (seg_bits - plain_h) + (old_tag ? 0 : 1);
      cost += cost_plain < cost_flip ? cost_plain : cost_flip;
    }
    return cost;
  }

  void apply_plan(StoredLine& stored, const CacheLine& new_line, u8 mask,
                  usize best_f, usize rotation) const {
    const BitBuf new_bits = gather_words(new_line, mask);
    const BitBuf old_cells = gather_words(stored.data, mask);
    const usize total_bits = popcount(mask) * kWordBits;
    const usize tags = config_.tag_budget >> best_f;
    const usize seg_bits = total_bits / tags;
    BitBuf encoded = new_bits;
    for (usize s = 0; s < tags; ++s) {
      const usize pos = s * seg_bits;
      const usize plain_h = old_cells.hamming_range(new_bits, pos, seg_bits);
      const bool old_tag = stored.meta.bit(tag_cell(s, rotation));
      const usize cost_plain = plain_h + (old_tag ? 1 : 0);
      const usize cost_flip = (seg_bits - plain_h) + (old_tag ? 0 : 1);
      const bool flip = cost_flip < cost_plain;
      if (flip) encoded.flip_range(pos, seg_bits);
      stored.meta.set_bit(tag_cell(s, rotation), flip);
    }
    scatter_words(stored.data, mask, encoded);
    if (config_.redundant_word_aware) {
      stored.meta.set_bits(dirty_flag_offset(), kDirtyFlagBits, mask);
    }
    if (config_.granularity_levels > 1) {
      stored.meta.set_bits(gran_flag_offset(), kGranularityFlagBits,
                           static_cast<u64>(best_f));
    }
    if (config_.rotate_tags) {
      const u64 gray =
          static_cast<u64>(rotation) ^ (static_cast<u64>(rotation) >> 1);
      stored.meta.set_bits(rotation_offset(), kRotationBits, gray);
    }
  }

  AdaptiveConfig config_;
  std::string name_;
};

}  // namespace nvmenc::testutil
