#include "trace/patterns.hpp"

#include <gtest/gtest.h>

namespace nvmenc {
namespace {

TEST(ValueMix, ValidatesSum) {
  ValueMix ok{.complement = 0.5, .random = 0.5};
  EXPECT_NO_THROW(ok.validate());
  ValueMix bad{.complement = 0.5, .random = 0.6};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  ValueMix negative{.complement = -0.1, .zero = 1.1};
  EXPECT_THROW(negative.validate(), std::invalid_argument);
}

TEST(WordClass, AssignmentIsDeterministic) {
  const ValueMix mix{.small_int = 0.5, .random = 0.5};
  for (usize w = 0; w < kWordsPerLine; ++w) {
    EXPECT_EQ(assign_word_class(7, 0x1000, w, mix),
              assign_word_class(7, 0x1000, w, mix));
  }
}

TEST(WordClass, DegenerateMixAssignsThatClass) {
  const ValueMix all_ptr{.pointer = 1.0};
  for (u64 line = 0; line < 32; ++line) {
    for (usize w = 0; w < kWordsPerLine; ++w) {
      EXPECT_EQ(assign_word_class(1, line * kLineBytes, w, all_ptr),
                WordClass::kPointer);
    }
  }
}

TEST(WordClass, MixProportionsRoughlyRespected) {
  const ValueMix mix{.complement = 0.25, .small_int = 0.25, .random = 0.5};
  usize complement = 0;
  usize small = 0;
  usize random = 0;
  const usize lines = 4000;
  for (u64 i = 0; i < lines; ++i) {
    switch (assign_word_class(9, i * kLineBytes, i % 8, mix)) {
      case WordClass::kComplement: ++complement; break;
      case WordClass::kSmallInt: ++small; break;
      case WordClass::kRandom: ++random; break;
      default: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(complement) / lines, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(small) / lines, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(random) / lines, 0.50, 0.03);
}

TEST(UpdateValue, ComplementClassToggles) {
  Xoshiro256 rng{1};
  EXPECT_EQ(update_class_value(rng, WordClass::kComplement, 0x1234),
            ~u64{0x1234});
}

TEST(UpdateValue, ZeroClassTogglesThroughZero) {
  Xoshiro256 rng{2};
  const u64 nonzero = update_class_value(rng, WordClass::kZero, 0);
  EXPECT_NE(nonzero, 0u);
  EXPECT_LE(nonzero, 0x100u);
  EXPECT_EQ(update_class_value(rng, WordClass::kZero, nonzero), 0u);
}

TEST(UpdateValue, OnesClassTogglesThroughAllOnes) {
  Xoshiro256 rng{3};
  const u64 v = update_class_value(rng, WordClass::kOnes, ~u64{0});
  EXPECT_NE(v, ~u64{0});
  EXPECT_EQ(update_class_value(rng, WordClass::kOnes, v), ~u64{0});
}

TEST(UpdateValue, SmallIntStaysSmall) {
  Xoshiro256 rng{4};
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(update_class_value(rng, WordClass::kSmallInt, 5),
              u64{1} << 16);
  }
}

TEST(UpdateValue, PointerKeepsHighBits) {
  Xoshiro256 rng{5};
  const u64 old_value = 0x50001234567890F8ull;
  for (int i = 0; i < 100; ++i) {
    const u64 v = update_class_value(rng, WordClass::kPointer, old_value);
    EXPECT_EQ(v >> 24, old_value >> 24);
  }
}

TEST(UpdateValue, FloatPerturbsLowBitsOnly) {
  Xoshiro256 rng{6};
  const u64 old_value = 0x4010000000000000ull;
  for (int i = 0; i < 100; ++i) {
    const u64 v = update_class_value(rng, WordClass::kFloat, old_value);
    EXPECT_LE(popcount(v ^ old_value), 4u);
    EXPECT_EQ((v ^ old_value) & ~low_mask(20), 0u);
  }
}

TEST(UpdateValue, AlwaysChangesTheWord) {
  Xoshiro256 rng{7};
  for (const WordClass cls :
       {WordClass::kComplement, WordClass::kZero, WordClass::kOnes,
        WordClass::kSmallInt, WordClass::kPointer, WordClass::kFloat,
        WordClass::kRandom}) {
    u64 v = 0x123456789ull;
    for (int i = 0; i < 50; ++i) {
      const u64 next = update_class_value(rng, cls, v);
      ASSERT_NE(next, v);
      v = next;
    }
  }
}

TEST(InitialLine, Deterministic) {
  const ValueMix mix{.small_int = 0.5, .random = 0.5};
  EXPECT_EQ(initial_line(0x1000, 42, mix, 0.3),
            initial_line(0x1000, 42, mix, 0.3));
}

TEST(InitialLine, SeedAndAddressChangeContent) {
  const ValueMix mix{.random = 1.0};
  const CacheLine a = initial_line(0x1000, 42, mix, 0.0);
  EXPECT_NE(a, initial_line(0x1040, 42, mix, 0.0));
  EXPECT_NE(a, initial_line(0x1000, 43, mix, 0.0));
}

TEST(InitialLine, ZeroBiasExtremes) {
  const ValueMix mix{.random = 1.0};
  EXPECT_EQ(initial_line(0x40, 7, mix, 1.0), CacheLine{});
  usize zero_words = 0;
  for (u64 addr = 0; addr < 64 * kLineBytes; addr += kLineBytes) {
    const CacheLine line = initial_line(addr, 7, mix, 0.0);
    for (usize w = 0; w < kWordsPerLine; ++w) {
      zero_words += line.word(w) == 0;
    }
  }
  EXPECT_EQ(zero_words, 0u);
}

TEST(InitialLine, ClassAwareInitialValues) {
  // A pure-small-int mix yields small initial values (bias 0).
  const ValueMix small{.small_int = 1.0};
  for (u64 addr = 0; addr < 16 * kLineBytes; addr += kLineBytes) {
    const CacheLine line = initial_line(addr, 5, small, 0.0);
    for (usize w = 0; w < kWordsPerLine; ++w) {
      EXPECT_LT(line.word(w), u64{1} << 16);
    }
  }
  // A pure-zero mix starts all slots at zero.
  const ValueMix zero{.zero = 1.0};
  EXPECT_EQ(initial_line(0x40, 5, zero, 0.0), CacheLine{});
}

TEST(InitialLine, BiasRoughlyMatchesZeroFraction) {
  const ValueMix mix{.random = 1.0};
  usize zero_words = 0;
  const usize lines = 2000;
  for (u64 i = 0; i < lines; ++i) {
    const CacheLine line = initial_line(i * kLineBytes, 9, mix, 0.3);
    for (usize w = 0; w < kWordsPerLine; ++w) {
      zero_words += line.word(w) == 0;
    }
  }
  const double frac =
      static_cast<double>(zero_words) / (lines * kWordsPerLine);
  EXPECT_NEAR(frac, 0.3, 0.03);
}

}  // namespace
}  // namespace nvmenc
