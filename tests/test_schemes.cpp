#include "core/schemes.hpp"

#include <gtest/gtest.h>

#include "encoder_test_util.hpp"
#include "encoding/dcw.hpp"

namespace nvmenc {
namespace {

/// Every constructible (non-paper-model) scheme.
const std::vector<Scheme>& all_encoder_schemes() {
  static const std::vector<Scheme> schemes = {
      Scheme::kDcw,     Scheme::kFnw,     Scheme::kAfnw,
      Scheme::kCoef,    Scheme::kCafo,    Scheme::kRead,
      Scheme::kReadSae, Scheme::kSaeOnly, Scheme::kFlipMin,
      Scheme::kPres,    Scheme::kReadSaeRotate};
  return schemes;
}

TEST(Schemes, PaperSetInFigureOrder) {
  const auto& s = paper_schemes();
  ASSERT_EQ(s.size(), 7u);
  EXPECT_EQ(scheme_name(s[0]), "DCW");
  EXPECT_EQ(scheme_name(s[1]), "Flip-N-Write");
  EXPECT_EQ(scheme_name(s[2]), "AFNW");
  EXPECT_EQ(scheme_name(s[3]), "COEF");
  EXPECT_EQ(scheme_name(s[4]), "CAFO");
  EXPECT_EQ(scheme_name(s[5]), "READ");
  EXPECT_EQ(scheme_name(s[6]), "READ+SAE");
}

TEST(Schemes, MakeEncoderProducesWorkingEncoders) {
  for (Scheme s : paper_schemes()) {
    const EncoderPtr enc = make_encoder(s);
    ASSERT_NE(enc, nullptr);
    CacheLine line = CacheLine::filled(0x1234567890ABCDEFull);
    StoredLine stored = enc->make_stored(line);
    EXPECT_EQ(enc->decode(stored), line) << scheme_name(s);
  }
}

TEST(Schemes, CapacityOverheadsMatchSection41) {
  EXPECT_DOUBLE_EQ(make_encoder(Scheme::kDcw)->capacity_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(make_encoder(Scheme::kFnw)->capacity_overhead(), 0.125);
  // COEF: the paper claims 0.2% (1 bit/line); the implementable variant
  // needs per-word encoded/raw flags = 8 bits = 1.6% (DESIGN.md).
  EXPECT_NEAR(make_encoder(Scheme::kCoef)->capacity_overhead(), 0.0156,
              0.001);
  EXPECT_NEAR(make_encoder(Scheme::kCafo)->capacity_overhead(), 0.094,
              0.001);
  EXPECT_NEAR(make_encoder(Scheme::kRead)->capacity_overhead(), 0.078,
              0.001);
  EXPECT_NEAR(make_encoder(Scheme::kReadSae)->capacity_overhead(), 0.082,
              0.001);
}

TEST(Schemes, EncodeLogicChargedOnlyForContribution) {
  EXPECT_FALSE(charges_encode_logic(Scheme::kDcw));
  EXPECT_FALSE(charges_encode_logic(Scheme::kFnw));
  EXPECT_FALSE(charges_encode_logic(Scheme::kCafo));
  EXPECT_TRUE(charges_encode_logic(Scheme::kRead));
  EXPECT_TRUE(charges_encode_logic(Scheme::kReadSae));
}

TEST(Schemes, NameRoundTrip) {
  for (Scheme s : paper_schemes()) {
    EXPECT_EQ(scheme_by_name(scheme_name(s)), s);
  }
  EXPECT_EQ(scheme_by_name("FNW"), Scheme::kFnw);
  EXPECT_EQ(scheme_by_name("SAE-only"), Scheme::kSaeOnly);
  EXPECT_THROW((void)scheme_by_name("nope"), std::invalid_argument);
}

TEST(Schemes, ExtensionSchemesWork) {
  for (Scheme s : {Scheme::kSaeOnly, Scheme::kFlipMin}) {
    const EncoderPtr enc = make_encoder(s);
    CacheLine line = CacheLine::filled(42);
    StoredLine stored = enc->make_stored(line);
    EXPECT_EQ(enc->decode(stored), line) << scheme_name(s);
  }
}

class EverySchemeProperty : public ::testing::TestWithParam<Scheme> {};

TEST_P(EverySchemeProperty, RoundTripsAllWriteClasses) {
  const EncoderPtr enc = make_encoder(GetParam());
  testutil::exercise_encoder(*enc, 4000 + static_cast<u64>(GetParam()),
                             250);
}

TEST_P(EverySchemeProperty, NeverWorseThanDcwPlusMetadata) {
  // Universal sanity bound: a write can never cost more than DCW's data
  // flips plus every metadata bit changing.
  const EncoderPtr enc = make_encoder(GetParam());
  DcwEncoder dcw;
  Xoshiro256 rng{777 + static_cast<u64>(GetParam())};
  CacheLine logical = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(logical);
  StoredLine plain = dcw.make_stored(logical);
  for (int i = 0; i < 200; ++i) {
    logical = testutil::next_line(
        rng, logical, testutil::kAllWriteClasses[rng.next_below(6)]);
    const usize cost = enc->encode(stored, logical).total();
    const usize base = dcw.encode(plain, logical).total();
    // Fixed-block mask schemes (FNW/FlipMin/PRES/CAFO) can always re-use
    // each block's previous mask, so they are bounded by DCW + metadata.
    // Compressing schemes re-layout data, and the READ family re-shapes
    // segment geometry (clean-word bookkeeping), so for those only the
    // trivial full-line bound applies.
    const bool strict = GetParam() == Scheme::kDcw ||
                        GetParam() == Scheme::kFnw ||
                        GetParam() == Scheme::kFlipMin ||
                        GetParam() == Scheme::kPres ||
                        GetParam() == Scheme::kCafo;
    if (strict) {
      ASSERT_LE(cost, base + enc->meta_bits()) << "iter " << i;
    } else {
      ASSERT_LE(cost, kLineBits + enc->meta_bits()) << "iter " << i;
    }
  }
}

TEST_P(EverySchemeProperty, SilentWriteAfterStateBuildupIsFree) {
  const EncoderPtr enc = make_encoder(GetParam());
  Xoshiro256 rng{555 + static_cast<u64>(GetParam())};
  CacheLine logical = testutil::random_line(rng);
  StoredLine stored = enc->make_stored(logical);
  for (int i = 0; i < 20; ++i) {
    logical = testutil::next_line(
        rng, logical, testutil::kAllWriteClasses[rng.next_below(6)]);
    (void)enc->encode(stored, logical);
  }
  EXPECT_EQ(enc->encode(stored, logical).total(), 0u)
      << scheme_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EverySchemeProperty,
                         ::testing::ValuesIn(all_encoder_schemes()),
                         [](const auto& param_info) {
                           std::string name = scheme_name(param_info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace nvmenc
